//! The continuous executor: event detection, device-selection optimization,
//! synchronization, and action execution on the virtual clock.
//!
//! Every `sample_period` the engine scans the sensor tables through the
//! communication layer, evaluates each registered query's event conjuncts,
//! and fires an [`ActionRequest`] per rising edge. Requests pending in one
//! epoch are batched per shared action operator and dispatched together:
//! probe candidates (§4), estimate costs from the probed physical status
//! (§2.3), assign with LERFA + SRFE when the batch warrants scheduling (§5),
//! lock devices for the assigned window (§4), and execute on the simulated
//! hardware.

use std::collections::{BTreeMap, BTreeSet};

use aorta_data::{Tuple, Value};
use aorta_device::pushdown::numeric_sample;
use aorta_device::{
    DeviceId, DeviceKind, PhotoError, PhotoOutcome, PhotoSize, PhysicalStatus, PtzPosition,
};
use aorta_net::{BreakerDecision, BreakerState, ScanOperator};
use aorta_obs::{detect_metrics, push_metrics, MetricsRegistry, SpanKind};
use aorta_sim::{FaultEvent, LinkModel, SimDuration, SimTime};
use aorta_wal::{LifecycleStage, WalRecord};

use crate::actions::{ActionDef, ActionHandler};
use crate::cost::{estimate_action_cost, CostContext};
use crate::expr::{eval_expr, eval_predicate, Env, EvalContext};
use crate::pindex::{GroupEpoch, TupleOutcome};
use crate::shared::ActionRequest;
use crate::{Aorta, DispatchPolicy};

/// Events on the engine's internal virtual-time queue.
///
/// `Execute` carries its whole request (~300 bytes); `Sample` is a unit
/// variant fired once per second of virtual time, so the size skew is
/// irrelevant to throughput and not worth boxing.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum EngineEvent {
    /// Periodic sensor sampling + dispatch.
    Sample,
    /// A previously assigned request starts executing on its device.
    Execute {
        /// The request to execute.
        request: ActionRequest,
        /// The selected device.
        device: DeviceId,
    },
}

/// The admission gate's decision for one would-be request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdmissionVerdict {
    /// Admit at full quality.
    Admit,
    /// Admit, but degraded to reduced quality (brownout).
    Degrade,
    /// Refuse: counted in `shed`, never enqueued.
    Shed,
}

/// Raw engine counters (photo outcomes are derived at read time, since
/// interference can downgrade a photo after the fact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RawStats {
    pub events_detected: u64,
    pub requests: u64,
    pub executed: u64,
    pub connect_failures: u64,
    pub busy_rejections: u64,
    pub no_candidate: u64,
    pub timed_out: u64,
    pub out_of_range: u64,
    pub action_errors: u64,
    pub messages_delivered: u64,
    pub beeps_delivered: u64,
    pub latency_total_us: u64,
    pub latency_count: u64,
    pub retries: u64,
    pub orphaned: u64,
    pub partial_cost_us: u64,
    pub escalated_out: u64,
    pub escalated_in: u64,
    pub shed: u64,
    pub expired: u64,
    pub degraded: u64,
    pub late_successes: u64,
    pub eval_errors: u64,
    pub idless_skipped: u64,
    pub bad_device_ids: u64,
}

/// A snapshot of engine statistics.
///
/// The §6.2 failure-rate metric is [`EngineStats::failure_rate`]: failed
/// requests (connection timeouts, busy rejections, no available candidate,
/// start-deadline misses) plus ruined photos (blurred / wrong position),
/// over all requests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Physical events detected (rising edges).
    pub events_detected: u64,
    /// Action requests created.
    pub requests: u64,
    /// Requests whose action was accepted by a device.
    pub executed: u64,
    /// Connection-level failures (camera connect timeout, phone out of
    /// coverage, mote radio loss).
    pub connect_failures: u64,
    /// Commands rejected by a busy camera (unsynchronized mode).
    pub busy_rejections: u64,
    /// Requests with no available candidate after probing/filtering.
    pub no_candidate: u64,
    /// Requests that could not start within the request timeout.
    pub timed_out: u64,
    /// Photo targets outside camera travel limits.
    pub out_of_range: u64,
    /// Custom-action errors.
    pub action_errors: u64,
    /// Photos that completed sharp and on target.
    pub photos_ok: u64,
    /// Photos ruined by head redirection during capture.
    pub photos_blurred: u64,
    /// Photos taken at the wrong position after redirection mid-movement.
    pub photos_wrong: u64,
    /// MMS/SMS deliveries.
    pub messages_delivered: u64,
    /// Mote beeps delivered.
    pub beeps_delivered: u64,
    /// Mean event-to-action-completion latency over executed requests.
    pub mean_action_latency: Option<SimDuration>,
    /// Failover retries dispatched after device-level failures.
    pub retries: u64,
    /// Requests whose device crashed before execution and for which no
    /// remaining candidate could take over.
    pub orphaned: u64,
    /// Virtual time of partially completed work lost to mid-action crashes.
    pub partial_cost: SimDuration,
    /// Requests handed to the cluster gateway after local candidate
    /// exhaustion (zero unless `escalate_exhausted` is set).
    pub escalated_out: u64,
    /// Requests adopted from the cluster gateway after another shard
    /// escalated them.
    pub escalated_in: u64,
    /// Probes attempted.
    pub probes: u64,
    /// Probes that timed out.
    pub probe_timeouts: u64,
    /// Successful lock acquisitions.
    pub lock_acquisitions: u64,
    /// Lock conflicts observed by the optimizer.
    pub lock_conflicts: u64,
    /// Requests shed by admission control or by the scheduler's deadline
    /// rejection (predicted completion past the request deadline).
    pub shed: u64,
    /// Requests cancelled at execution because their deadline had passed.
    pub expired: u64,
    /// Requests completed at degraded quality under brownout (lo-res
    /// photos). A degraded completion is a success, counted here instead
    /// of in `executed`.
    pub degraded: u64,
    /// Successes whose completion landed *after* the request deadline —
    /// zero whenever deadline enforcement is on; nonzero only for action
    /// kinds whose duration cannot be predicted exactly before starting.
    pub late_successes: u64,
    /// Circuit-breaker trips (Closed/Half-open → Open transitions).
    pub breaker_trips: u64,
    /// Circuit-breaker probation closes (Half-open → Closed transitions).
    pub breaker_closes: u64,
    /// Event-predicate evaluations that *errored* (e.g. a type-mismatched
    /// comparison). An erroring conjunct is treated as not-matched, but the
    /// error is never silently folded into `false`: each one is counted
    /// here and the first occurrence per (query, conjunct) is traced.
    pub eval_errors: u64,
    /// Scanned event tuples skipped because they carried no usable `id`:
    /// rising edges are tracked per source device, and folding all id-less
    /// tuples onto one shared key would let the first mask the rest.
    pub idless_skipped: u64,
}

/// Byte accounting for in-network operator pushdown (`EngineConfig::pushdown`).
///
/// All byte counters are hop-weighted: a reply from a mote `d` radio hops
/// from the gateway is counted `d` times, since every intermediate mote
/// forwards it (the in-network cost model pushdown exists to reduce).
/// Kept apart from [`EngineStats`] on purpose — the committed seed
/// artifacts digest `EngineStats`' `Debug` rendering, and pushdown
/// accounting must never perturb them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushdownStats {
    /// Scanned tuples shipped in full (some watching prefix passed or
    /// errored, the tuple had no usable id, or its kind is not
    /// suppressible).
    pub shipped_tuples: u64,
    /// Scanned tuples suppressed at the device: every watching query's
    /// pushed prefix evaluated cleanly false.
    pub suppressed_tuples: u64,
    /// Hop-weighted bytes of full attribute replies actually shipped.
    pub reply_bytes: u64,
    /// Hop-weighted bytes of one-byte suppression markers sent in place
    /// of full replies.
    pub marker_bytes: u64,
    /// Hop-weighted bytes the same scans would have cost with pushdown
    /// off (every tuple shipped in full).
    pub baseline_bytes: u64,
}

impl PushdownStats {
    /// Total bytes on the wire with pushdown on: full replies plus
    /// suppression markers.
    pub fn wire_bytes(&self) -> u64 {
        self.reply_bytes + self.marker_bytes
    }

    /// Bytes pushdown kept off the wire relative to shipping everything.
    pub fn saved_bytes(&self) -> u64 {
        self.baseline_bytes.saturating_sub(self.wire_bytes())
    }
}

impl EngineStats {
    /// Failed requests: errors, overload sheds and expiries, plus ruined
    /// photos. A degraded (brownout) completion is a success, not a failure.
    pub fn failures(&self) -> u64 {
        self.connect_failures
            + self.busy_rejections
            + self.no_candidate
            + self.timed_out
            + self.out_of_range
            + self.action_errors
            + self.orphaned
            + self.shed
            + self.expired
            + self.photos_blurred
            + self.photos_wrong
    }

    /// Failures over requests; `None` before any request exists.
    pub fn failure_rate(&self) -> Option<f64> {
        if self.requests == 0 {
            None
        } else {
            Some(self.failures() as f64 / self.requests as f64)
        }
    }

    /// Syncs this aggregate snapshot into a metrics registry under the
    /// `aorta_engine_` name prefix.
    ///
    /// Absolute `counter_set` (not increments) keeps repeated syncs of a
    /// monotone snapshot from double-counting, and the prefix keeps the
    /// aggregates apart from the live labeled series the engine records as
    /// it runs (e.g. `aorta_probe_timeouts{device=…}` versus the aggregate
    /// `aorta_engine_probe_timeouts`).
    pub fn record_into(&self, registry: &mut MetricsRegistry) {
        let counters: &[(&str, u64)] = &[
            ("aorta_engine_events_detected", self.events_detected),
            ("aorta_engine_requests", self.requests),
            ("aorta_engine_executed", self.executed),
            ("aorta_engine_connect_failures", self.connect_failures),
            ("aorta_engine_busy_rejections", self.busy_rejections),
            ("aorta_engine_no_candidate", self.no_candidate),
            ("aorta_engine_timed_out", self.timed_out),
            ("aorta_engine_out_of_range", self.out_of_range),
            ("aorta_engine_action_errors", self.action_errors),
            ("aorta_engine_photos_ok", self.photos_ok),
            ("aorta_engine_photos_blurred", self.photos_blurred),
            ("aorta_engine_photos_wrong", self.photos_wrong),
            ("aorta_engine_messages_delivered", self.messages_delivered),
            ("aorta_engine_beeps_delivered", self.beeps_delivered),
            ("aorta_engine_retries", self.retries),
            ("aorta_engine_orphaned", self.orphaned),
            ("aorta_engine_escalated_out", self.escalated_out),
            ("aorta_engine_escalated_in", self.escalated_in),
            ("aorta_engine_probes", self.probes),
            ("aorta_engine_probe_timeouts", self.probe_timeouts),
            ("aorta_engine_lock_acquisitions", self.lock_acquisitions),
            ("aorta_engine_lock_conflicts", self.lock_conflicts),
            ("aorta_engine_shed", self.shed),
            ("aorta_engine_expired", self.expired),
            ("aorta_engine_degraded", self.degraded),
            ("aorta_engine_late_successes", self.late_successes),
            ("aorta_engine_breaker_trips", self.breaker_trips),
            ("aorta_engine_breaker_closes", self.breaker_closes),
            ("aorta_engine_eval_errors", self.eval_errors),
            ("aorta_engine_idless_skipped", self.idless_skipped),
        ];
        for &(name, value) in counters {
            registry.counter_set(name, &[], value);
        }
        if let Some(mean) = self.mean_action_latency {
            registry.gauge_set(
                "aorta_engine_mean_action_latency_us",
                &[],
                mean.as_micros() as i64,
            );
        }
        registry.gauge_set(
            "aorta_engine_partial_cost_us",
            &[],
            self.partial_cost.as_micros() as i64,
        );
    }
}

impl Aorta {
    /// Advances the virtual clock to `deadline`, processing every engine
    /// event due on the way.
    ///
    /// Injected faults (see [`Aorta::inject_faults`]) are interleaved on the
    /// same clock: a fault scheduled at or before the next engine event is
    /// applied first, so a crash at `t` affects an execution at `t`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_until_inner(deadline, None);
    }

    /// Advances the clock to `deadline` under a shared **tripwire**: the
    /// cluster's parallel window runner executes shard clones concurrently
    /// and must stop every clone at the earliest cross-shard interaction so
    /// the window can be re-run sequentially from there.
    ///
    /// The engine stops (returning `false`) as soon as:
    ///
    /// - it escalates a request (the gateway would act at that instant) —
    ///   it also lowers the tripwire to that instant via `fetch_min`;
    /// - a process crash halts it — likewise lowering the tripwire;
    /// - its next pending work lies **at or past** the current tripwire
    ///   value (another clone interacted there; events at the violation
    ///   instant itself are left unprocessed, because at equal instants the
    ///   sequential order between this shard and the violating one is not
    ///   known from inside a clone).
    ///
    /// An untripped run (`true`) is byte-identical to [`Aorta::run_until`].
    /// Times on the wire are microseconds ([`SimTime::as_micros`]);
    /// `u64::MAX` means "no violation observed yet".
    pub fn run_until_bounded(
        &mut self,
        deadline: SimTime,
        tripwire: &std::sync::atomic::AtomicU64,
    ) -> bool {
        self.run_until_inner(deadline, Some(tripwire))
    }

    /// Shared body of [`Aorta::run_until`] (no tripwire) and
    /// [`Aorta::run_until_bounded`] (tripwire for parallel windows).
    /// Returns `true` when the engine ran all the way to `deadline`.
    fn run_until_inner(
        &mut self,
        deadline: SimTime,
        tripwire: Option<&std::sync::atomic::AtomicU64>,
    ) -> bool {
        use std::sync::atomic::Ordering;
        // A crashed engine does nothing (and logs nothing): its in-memory
        // state died with the process, and recovery rebuilds a fresh one.
        if self.halted {
            return false;
        }
        self.wal_emit(|| WalRecord::RunUntil { deadline });
        loop {
            if let Some(tw) = tripwire {
                if !self.escalated.is_empty() {
                    // `now` is still the instant of the escalating batch:
                    // this check runs before the next pop.
                    tw.fetch_min(self.now.as_micros(), Ordering::AcqRel);
                    return false;
                }
            }
            let next_fault = self.faults.peek_next_time().filter(|&f| f <= deadline);
            let next_event = self.queue.peek_time().filter(|&e| e <= deadline);
            if let Some(tw) = tripwire {
                let next = match (next_fault, next_event) {
                    (Some(f), Some(e)) => Some(f.min(e)),
                    (f, e) => f.or(e),
                };
                if let Some(t) = next {
                    if t.as_micros() >= tw.load(Ordering::Acquire) {
                        return false;
                    }
                }
            }
            let fault_first = match (next_fault, next_event) {
                (Some(f), Some(e)) => f <= e,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if fault_first {
                let t = next_fault.expect("checked above");
                self.now = t;
                for (time, fault) in self.faults.pop_due(t) {
                    self.apply_fault(time, fault);
                    if self.halted {
                        if let Some(tw) = tripwire {
                            tw.fetch_min(self.now.as_micros(), Ordering::AcqRel);
                        }
                        return false;
                    }
                }
                continue;
            }
            let Some(t) = next_event else { break };
            let (t, event) = {
                let popped = self.queue.pop().expect("peeked above");
                debug_assert_eq!(popped.0, t);
                popped
            };
            self.now = t;
            match event {
                EngineEvent::Sample => self.handle_sample(),
                EngineEvent::Execute { request, device } => {
                    // Work whose deadline already passed is worthless: cancel
                    // it (releasing any lock it holds) instead of commanding
                    // the device for a result nobody can use.
                    if self.now >= request.deadline {
                        self.expire_request(&request, device);
                    } else if self.registry.get(device).is_some_and(|e| !e.online) {
                        // A device that crashed since assignment orphans the
                        // action: fail over instead of commanding a dead device.
                        self.handle_orphaned(&request, device);
                    } else {
                        self.execute_request(&request, device);
                    }
                }
            }
        }
        // Faults due before the deadline but after the last engine event.
        for (time, fault) in self.faults.pop_due(deadline) {
            self.now = time;
            self.apply_fault(time, fault);
            if self.halted {
                if let Some(tw) = tripwire {
                    tw.fetch_min(self.now.as_micros(), Ordering::AcqRel);
                }
                return false;
            }
        }
        self.now = deadline;
        true
    }

    /// Advances the virtual clock by `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.run_until(self.now + duration);
    }

    /// A statistics snapshot (photo outcomes recomputed from the cameras).
    pub fn stats(&self) -> EngineStats {
        let raw = self.raw_stats;
        let mut photos_ok = 0;
        let mut photos_blurred = 0;
        let mut photos_wrong = 0;
        for entry in self.registry.of_kind(DeviceKind::Camera) {
            if let Some(cam) = entry.sim.as_camera() {
                photos_ok += cam.count_outcome(PhotoOutcome::Ok) as u64;
                photos_blurred += cam.count_outcome(PhotoOutcome::Blurred) as u64;
                photos_wrong += cam.count_outcome(PhotoOutcome::WrongPosition) as u64;
            }
        }
        EngineStats {
            events_detected: raw.events_detected,
            requests: raw.requests,
            executed: raw.executed,
            connect_failures: raw.connect_failures,
            busy_rejections: raw.busy_rejections,
            no_candidate: raw.no_candidate,
            timed_out: raw.timed_out,
            out_of_range: raw.out_of_range,
            action_errors: raw.action_errors,
            photos_ok,
            photos_blurred,
            photos_wrong,
            messages_delivered: raw.messages_delivered,
            beeps_delivered: raw.beeps_delivered,
            mean_action_latency: raw
                .latency_total_us
                .checked_div(raw.latency_count)
                .map(SimDuration::from_micros),
            retries: raw.retries,
            orphaned: raw.orphaned,
            partial_cost: SimDuration::from_micros(raw.partial_cost_us),
            escalated_out: raw.escalated_out,
            escalated_in: raw.escalated_in,
            probes: self.prober.probes_sent(),
            probe_timeouts: self.prober.timeouts(),
            lock_acquisitions: self.locks.acquisitions(),
            lock_conflicts: self.locks.conflicts(),
            shed: raw.shed,
            expired: raw.expired,
            degraded: raw.degraded,
            late_successes: raw.late_successes,
            breaker_trips: self.breakers.as_ref().map_or(0, |b| b.trips()),
            breaker_closes: self.breakers.as_ref().map_or(0, |b| b.closes()),
            eval_errors: raw.eval_errors,
            idless_skipped: raw.idless_skipped,
        }
    }

    // --- fault injection -----------------------------------------------------

    fn apply_fault(&mut self, time: SimTime, fault: FaultEvent<DeviceId>) {
        match fault {
            FaultEvent::Crash(d) => {
                if self.registry.get(d).is_none_or(|e| !e.online) {
                    return; // unknown or already down
                }
                self.registry.set_online(d, false);
                self.trace.emit(time, "fault", format!("{d} crashed"));
                // A crash mid-photo loses the partial work done so far.
                if let Some(cam) = self.registry.camera(d) {
                    if cam.is_busy(time) {
                        if let Some(p) = cam.photos().last() {
                            let partial = time.saturating_duration_since(p.requested_at);
                            self.raw_stats.partial_cost_us += partial.as_micros();
                            self.trace.emit(
                                time,
                                "fault",
                                format!("{d} was mid-action, {partial} of work lost"),
                            );
                        }
                    }
                }
                // The optimizer's lock on a dead device is meaningless; release
                // it so other queries are not queued behind a corpse.
                if self.locks.is_locked(d, time) {
                    self.locks.unlock(d);
                    self.trace
                        .emit(time, "failover", format!("{d} lock released after crash"));
                }
                // A crash is definitive evidence: open the breaker now rather
                // than paying the failure-threshold probes to discover it.
                if let Some(bank) = self.breakers.as_mut() {
                    if bank.force_open(d, time, &mut self.rng) {
                        self.trace
                            .emit(time, "breaker", format!("{d} opened on crash"));
                        self.wal_emit(|| WalRecord::Breaker {
                            device: d,
                            state: 1,
                            at: time,
                        });
                    }
                }
            }
            FaultEvent::Recover(d) => {
                if self.registry.set_online(d, true) {
                    self.trace.emit(time, "fault", format!("{d} recovered"));
                }
            }
            FaultEvent::LossBurstStart { extra_loss } => {
                self.loss_stack.push(extra_loss);
                self.rebuild_links();
                self.trace.emit(
                    time,
                    "fault",
                    format!("loss burst begins (+{extra_loss:.2} loss)"),
                );
            }
            FaultEvent::LossBurstEnd => {
                self.loss_stack.pop();
                self.rebuild_links();
                self.trace.emit(time, "fault", "loss burst ends");
            }
            FaultEvent::LatencySpikeStart { factor } => {
                self.latency_stack.push(factor);
                self.rebuild_links();
                self.trace.emit(
                    time,
                    "fault",
                    format!("latency spike begins (x{factor:.1})"),
                );
            }
            FaultEvent::LatencySpikeEnd => {
                self.latency_stack.pop();
                self.rebuild_links();
                self.trace.emit(time, "fault", "latency spike ends");
            }
            FaultEvent::ProcessCrash(_) => {
                // Control-plane crash: this engine process dies at `time`.
                // Deliberately zero observable footprint — no trace line, no
                // counter, no RNG draw — so a crashed-and-recovered run can
                // be byte-identical to an uninterrupted reference run. The
                // WAL is a separate channel; the `CrashApplied` record is
                // what recovery counts to grant replay immunity.
                self.wal_emit(|| WalRecord::CrashApplied { at: time });
                if self.crash_immunity > 0 {
                    self.crash_immunity -= 1;
                } else {
                    self.halted = true;
                }
            }
            FaultEvent::Partition { .. } => {
                // Cluster-scope event: inter-shard blackouts are modelled at
                // the gateway, which extracts the windows before splitting
                // the plan. Zero footprint here (no trace, no RNG draw), so
                // replicated copies never perturb a shard's byte history.
            }
        }
    }

    /// Reapplies the active burst stacks on top of the baseline links.
    fn rebuild_links(&mut self) {
        let extra_loss: f64 = self.loss_stack.iter().sum();
        let factor: f64 = self.latency_stack.iter().product();
        for kind in DeviceKind::ALL {
            let Some(base) = self.baseline_links.get(&kind) else {
                continue;
            };
            let loss = (base.loss_prob() + extra_loss).min(1.0);
            let link = LinkModel::new(base.base_latency().mul_f64(factor), base.jitter(), loss)
                .with_bytes_per_sec(base.bytes_per_sec());
            self.registry.set_link(kind, link);
        }
    }

    /// WAL lifecycle effect for one request transition (no-op without WAL).
    fn wal_stage(&self, query_id: u32, stage: LifecycleStage) {
        let at = self.now;
        self.wal_emit(|| WalRecord::Lifecycle {
            query_id,
            stage,
            at,
        });
    }

    // --- cluster hooks -------------------------------------------------------

    /// Parks an exhausted request in the escalation buffer for the gateway.
    fn escalate(&mut self, request: ActionRequest) {
        self.raw_stats.escalated_out += 1;
        self.wal_stage(request.query_id, LifecycleStage::Escalated);
        self.trace.emit(
            self.now,
            "gateway",
            format!(
                "query {}: local candidates exhausted, escalating to gateway",
                request.query_id
            ),
        );
        self.escalated.push(request);
    }

    /// Takes every request escalated since the last drain. The caller (the
    /// cluster gateway) owns them from here: each must be re-injected into
    /// some shard via [`Aorta::inject_request`] or counted dropped, so the
    /// cluster-wide conservation invariant keeps holding.
    pub fn drain_escalated(&mut self) -> Vec<ActionRequest> {
        self.wal_emit(|| WalRecord::DrainEscalated);
        std::mem::take(&mut self.escalated)
    }

    /// Requests escalated but not yet drained by the gateway. Normally zero
    /// between steps (the gateway drains after every step); non-zero only on
    /// a halted engine whose final drain never happened — the cluster counts
    /// that backlog as in-flight while the shard is rebuilt elsewhere.
    pub fn escalated_backlog(&self) -> u64 {
        self.escalated.len() as u64
    }

    /// Adopts a request escalated from another shard: recomputes its
    /// candidate set against *this* engine's registry (the old shard's
    /// candidates are meaningless here) and enqueues it on the shared action
    /// operator for the next dispatch epoch.
    ///
    /// The request stays counted in the originating shard's `requests`; this
    /// shard counts it only as `escalated_in`, so cluster-wide each request
    /// is counted exactly once.
    pub fn inject_request(&mut self, mut request: ActionRequest) {
        if self.wal.is_some() {
            let wire = crate::recovery::wire_from_request(&request);
            self.wal_emit(|| WalRecord::RequestInjected { request: wire });
        }
        self.raw_stats.escalated_in += 1;
        request.candidates = self.recompute_candidates(&request);
        self.trace.emit(
            self.now,
            "gateway",
            format!(
                "query {}: adopted escalated request ({} candidate(s) here)",
                request.query_id,
                request.candidates.len()
            ),
        );
        self.operators
            .entry(request.action.clone())
            .or_default()
            .push(request);
    }

    /// The cheapest device on this shard able to serve `request`, with its
    /// estimated cost — the gateway's routing metric. Uses the last-known
    /// (unprobed) status: routing must not spend probe time on shards that
    /// end up not being chosen. Returns `None` when no local candidate
    /// passes the query's device predicates or all candidates are offline.
    pub fn cheapest_local_candidate(
        &mut self,
        request: &ActionRequest,
    ) -> Option<(DeviceId, SimDuration)> {
        // Command-logged even though it mutates no visible state: the
        // candidate rescan draws from the engine RNG, so replay must re-run
        // it to keep the stream aligned.
        if self.wal.is_some() {
            let wire = crate::recovery::wire_from_request(request);
            self.wal_emit(|| WalRecord::RouteProbe { request: wire });
        }
        let def = self.catalog.action(&request.action).cloned()?;
        let candidates = self.recompute_candidates(request);
        if candidates.is_empty() {
            return None;
        }
        let mut probe_req = request.clone();
        probe_req.candidates = candidates;
        let mut best: Option<(SimDuration, DeviceId)> = None;
        for (d, _) in &probe_req.candidates {
            // Breaker-open devices are not routable: quoting a cost for a
            // device the dispatcher will refuse to probe just wastes a hop.
            if self
                .breakers
                .as_ref()
                .is_some_and(|b| b.state(*d) == BreakerState::Open)
            {
                continue;
            }
            let Some(st) = self.unprobed_status(*d) else {
                continue;
            };
            let Some(cost) = self.estimate_request_cost(&def, &probe_req, *d, &st) else {
                continue;
            };
            if best.is_none_or(|b| (cost, *d) < b) {
                best = Some((cost, *d));
            }
        }
        best.map(|(cost, d)| (d, cost))
    }

    /// Re-evaluates the query's device predicates against a fresh scan of
    /// this engine's registry — candidate sets are never cached across
    /// shards (or across epochs; see `handle_sample`).
    fn recompute_candidates(&mut self, request: &ActionRequest) -> Vec<(DeviceId, Tuple)> {
        let Some(plan) = self
            .catalog
            .queries()
            .find(|p| p.query_id == request.query_id)
            .cloned()
        else {
            return Vec::new();
        };
        let Some(device_part) = &plan.device else {
            return Vec::new();
        };
        let kind = device_part.kind;
        let mut cache: BTreeMap<DeviceKind, Vec<Tuple>> = BTreeMap::new();
        let scan = ScanOperator::new(kind).run(&mut self.registry, self.now, &mut self.rng);
        cache.insert(kind, scan);
        self.candidates_for(&plan, &request.event_tuple, &cache)
    }

    /// The instant of this engine's next pending work — the earlier of the
    /// next queued engine event and the next undrained fault. The cluster
    /// steps its shards by repeatedly advancing the one with the smallest
    /// `(next_event_time, shard_id)`, which serializes the shards' event
    /// queues into one deterministic global order.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.queue.peek_time(), self.faults.peek_next_time()) {
            (Some(q), Some(f)) => Some(q.min(f)),
            (q, f) => q.or(f),
        }
    }

    /// Whether `device` is at a migration safe point: no `Execute` event
    /// queued for it, no optimizer lock held on it, and (for cameras) no
    /// action physically in progress. Moving a device between shards outside
    /// these conditions would strand queued work or tear a lock.
    pub fn device_idle(&self, device: DeviceId) -> bool {
        let queued = self
            .queue
            .iter()
            .any(|(_, e)| matches!(e, EngineEvent::Execute { device: d, .. } if *d == device));
        if queued || self.locks.is_locked(device, self.now) {
            return false;
        }
        match self.registry.camera(device) {
            Some(cam) => !cam.is_busy(self.now),
            None => true,
        }
    }

    /// An assigned action whose device went down before it could start.
    /// Release the dead device and re-run device selection over the
    /// remaining candidates; only when none are left is the request dropped
    /// — and then it is *counted* dropped, never silently lost.
    fn handle_orphaned(&mut self, request: &ActionRequest, device: DeviceId) {
        self.trace.emit(
            self.now,
            "failover",
            format!(
                "query {}: {device} offline at execution, re-selecting",
                request.query_id
            ),
        );
        if self.config.sync_enabled {
            self.locks.unlock(device);
        }
        if !self.failover_reselect(request, device) {
            if self.config.escalate_exhausted {
                self.escalate(request.clone());
            } else {
                self.raw_stats.orphaned += 1;
                self.wal_stage(request.query_id, LifecycleStage::Orphaned);
                self.trace.emit(
                    self.now,
                    "failover",
                    format!(
                        "query {}: no remaining candidate after {device} crash, request dropped",
                        request.query_id
                    ),
                );
            }
        }
    }

    /// Re-runs device selection for a request whose assigned device died.
    /// Unlike [`Aorta::maybe_retry`], this is not gated on the configured
    /// retry budget: a crash invalidates the assignment itself, so failover
    /// is always attempted while any live candidate remains.
    fn failover_reselect(&mut self, request: &ActionRequest, failed: DeviceId) -> bool {
        let mut retry = request.clone();
        retry.attempts += 1;
        retry
            .candidates
            .retain(|(d, _)| *d != failed && self.registry.get(*d).is_some_and(|e| e.online));
        if retry.candidates.is_empty() {
            return false;
        }
        self.raw_stats.retries += 1;
        self.wal_stage(retry.query_id, LifecycleStage::Retried);
        self.trace.emit(
            self.now,
            "failover",
            format!(
                "query {}: re-running device selection over {} remaining candidate(s)",
                retry.query_id,
                retry.candidates.len()
            ),
        );
        let action = retry.action.clone();
        self.dispatch_batch(&action, vec![retry]);
        true
    }

    // --- sampling & event detection -----------------------------------------

    fn handle_sample(&mut self) {
        // Schedule the next epoch first so a panic in user handlers cannot
        // stall the clock.
        self.queue
            .push(self.now + self.config.sample_period, EngineEvent::Sample);

        if self.catalog.query_count() == 0 {
            return;
        }

        // One scan per device kind per epoch, shared by all queries. The
        // kind list is collected in catalog name order — event kind before
        // device kind per plan, first appearance wins — so the scans (and
        // therefore the RNG draws they consume) happen in exactly the order
        // the original per-plan loop produced. The list is cached between
        // register/drop operations so the steady-state epoch never re-walks
        // the catalog — with 10⁶ registered AQs that walk would dominate the
        // epoch and break the sub-linear-cost property.
        let kinds = match &self.scan_kinds {
            Some(kinds) => kinds.clone(),
            None => {
                let mut kinds: Vec<DeviceKind> = Vec::new();
                for plan in self.catalog.queries() {
                    if !kinds.contains(&plan.event_kind) {
                        kinds.push(plan.event_kind);
                    }
                    if let Some(d) = &plan.device {
                        if !kinds.contains(&d.kind) {
                            kinds.push(d.kind);
                        }
                    }
                }
                self.scan_kinds = Some(kinds.clone());
                kinds
            }
        };
        let mut cache: BTreeMap<DeviceKind, Vec<Tuple>> = BTreeMap::new();
        for kind in kinds {
            cache.insert(
                kind,
                ScanOperator::new(kind).run(&mut self.registry, self.now, &mut self.rng),
            );
        }

        if self.config.pushdown {
            self.account_pushdown(&cache);
        }
        if self.config.vectorized_detect {
            self.detect_vectorized(&cache);
        } else {
            let plans: Vec<crate::AqPlan> = self.catalog.queries().cloned().collect();
            for plan in &plans {
                self.detect_events(plan, &cache);
            }
        }
        self.dispatch_pending();
    }

    /// The pushdown accounting pass: replays, per scanned tuple, the
    /// decision the device-side program would make — ship the full
    /// attribute reply, or substitute the one-byte suppression marker
    /// because every watching query's pushed prefix evaluated cleanly
    /// false — and accumulates what each arm costs on the wire.
    ///
    /// It runs *before* detection advances the window bank: a windowed
    /// push step previews the post-advance window through
    /// `WindowBank::peek`, so the device's decision agrees exactly with
    /// the aggregate the engine is about to evaluate. The pass writes
    /// only `push_stats` and obs counters — no RNG draws, no trace
    /// lines, no `raw_stats` — which is what keeps a pushdown run
    /// byte-identical to a baseline run.
    fn account_pushdown(&mut self, cache: &BTreeMap<DeviceKind, Vec<Tuple>>) {
        // The placement program is derived state, invalidated on
        // register/drop and rebuilt lazily here (cf. `scan_kinds`).
        if self.placement.is_none() {
            self.placement = Some(crate::placement::build_program(
                &self.catalog,
                &self.registry,
            ));
        }
        let program = self.placement.take().expect("built above");
        // The device's own view of its windows: a scratch copy of the bank
        // advanced sample-by-sample, so a tuple's ship/suppress decision sees
        // every earlier sample from the same source this epoch — exactly the
        // order detection will replay below against the real bank.
        let mut bank = self.windows.clone();
        for (kind, tuples) in cache {
            let schema = self.registry.schema(*kind).clone();
            let id_idx = schema.index_of("id");
            let mut shipped = 0u64;
            let mut suppressed = 0u64;
            let mut reply_bytes = 0u64;
            let mut marker_bytes = 0u64;
            let mut baseline_bytes = 0u64;
            for tuple in tuples {
                // Hop-weighted reply cost: every intermediate mote on the
                // path to the gateway forwards the reply. Non-mote devices
                // (and tuples whose id resolves to nothing) count one hop.
                let hops = id_idx
                    .and_then(|i| tuple.get(i))
                    .and_then(Value::as_i64)
                    .and_then(|raw| u32::try_from(raw).ok())
                    .and_then(|idx| self.registry.get(DeviceId::new(*kind, idx)))
                    .and_then(|e| e.sim.as_mote())
                    .map_or(1, |m| u64::from(m.depth()));
                let reply_cost = ScanOperator::reply_wire_len(&schema, tuple) as u64 * hops;
                baseline_bytes += reply_cost;
                if program.ships(*kind, &schema, tuple, &bank) {
                    shipped += 1;
                    reply_bytes += reply_cost;
                } else {
                    suppressed += 1;
                    marker_bytes += ScanOperator::suppressed_wire_len() as u64 * hops;
                }
                program.advance_windows(*kind, &schema, tuple, &mut bank);
            }
            self.push_stats.shipped_tuples += shipped;
            self.push_stats.suppressed_tuples += suppressed;
            self.push_stats.reply_bytes += reply_bytes;
            self.push_stats.marker_bytes += marker_bytes;
            self.push_stats.baseline_bytes += baseline_bytes;
            if let Some(m) = &self.obs {
                let kind_label = kind.to_string();
                let labels = &[("kind", kind_label.as_str())];
                m.incr(push_metrics::SHIPPED, labels, shipped);
                m.incr(push_metrics::SUPPRESSED, labels, suppressed);
                m.incr(push_metrics::WIRE_BYTES, labels, reply_bytes + marker_bytes);
                m.incr(push_metrics::BASELINE_BYTES, labels, baseline_bytes);
            }
        }
        self.placement = Some(program);
    }

    fn detect_events(&mut self, plan: &crate::AqPlan, cache: &BTreeMap<DeviceKind, Vec<Tuple>>) {
        let event_schema = self.registry.schema(plan.event_kind).clone();
        let id_idx = event_schema.index_of("id").expect("catalogs define id");
        // The cache lives in `handle_sample`'s frame, so the scan result is
        // borrowed rather than cloned per query per epoch.
        let event_tuples = cache.get(&plan.event_kind).expect("scanned above");

        for tuple in event_tuples {
            // Rising edges are tracked per source device. A tuple without a
            // usable id cannot participate: folding every id-less tuple onto
            // one shared key would let the first one flip the edge and mask
            // all the others' events. Skip them, counted, never silently.
            let Some(source) = tuple.get(id_idx).and_then(Value::as_i64) else {
                self.note_idless(plan);
                continue;
            };
            // Windows advance on *every* scanned tuple before the conjunct
            // walk — the mote sees every sample it takes, whether or not
            // pushdown later suppresses the reply — so a windowed conjunct
            // observes the window including the current sample. Non-numeric
            // samples (a lossy scan's NULLs) still occupy a slot: `LAST n`
            // means the last n samples taken, not the last n that parsed.
            for w in &plan.windowed {
                let attr = event_schema
                    .index_of(&w.attr)
                    .expect("windowed attrs are validated at plan time");
                self.windows.advance(
                    plan.query_id,
                    w.idx,
                    source,
                    w.window,
                    numeric_sample(tuple.get(attr)),
                );
            }
            let matched = {
                let ctx = EvalContext {
                    registry: &self.registry,
                };
                let env = Env::new().bind(&plan.event_binding, &event_schema, tuple);
                let mut all = true;
                for (idx, conjunct) in plan.event_conjuncts.iter().enumerate() {
                    let outcome = match plan.windowed.iter().find(|w| w.idx == idx) {
                        Some(w) => {
                            match self.windows.aggregate(plan.query_id, w.idx, source, w.agg) {
                                // An all-NULL (or empty) window has no aggregate:
                                // the conjunct is false, not an error — a mote
                                // warming up or a lossy stretch is normal
                                // operation, not a broken query.
                                None => Ok(false),
                                Some(v) => v
                                    .compare(&w.constant)
                                    .map(|ord| w.op.matches(ord))
                                    .map_err(|e| crate::EngineError::Eval(e.to_string())),
                            }
                        }
                        None => eval_predicate(conjunct, &env, &ctx),
                    };
                    match outcome {
                        Ok(true) => {}
                        Ok(false) => {
                            all = false;
                            break;
                        }
                        Err(e) => {
                            // An eval error is not "false": it usually means
                            // the predicate can *never* be decided (e.g. a
                            // type-mismatched comparison), and folding it
                            // into false hides the broken query forever.
                            // Treat the conjunct as unmatched but count the
                            // error, and trace the first occurrence per
                            // (query, conjunct) so the trace is not flooded
                            // once per tuple per epoch.
                            if self.record_eval_error(plan, idx) {
                                self.trace.emit(
                                    self.now,
                                    "eval_error",
                                    format!(
                                        "query {} conjunct {idx} failed to evaluate: {e}",
                                        plan.query_id
                                    ),
                                );
                            }
                            all = false;
                            break;
                        }
                    }
                }
                all
            };
            let key = (plan.query_id, source);
            // Audited fold: `None` here is not a swallowed error — it is
            // the map's encoding for "source never observed", and an edge
            // that has never been observed is low by definition.
            let was = self.edge.insert(key, matched).unwrap_or(false);
            if !matched || was {
                continue; // not a rising edge
            }
            self.fire_event(plan, tuple, cache);
        }
    }

    /// Shared idless-tuple bookkeeping: counter, obs metric, trace line.
    /// Called per (plan, tuple) by both detection paths so the side effects
    /// stay literally the same code.
    fn note_idless(&mut self, plan: &crate::AqPlan) {
        self.raw_stats.idless_skipped += 1;
        if let Some(m) = &self.obs {
            let query = plan.query_id.to_string();
            m.incr("aorta_idless_skipped", &[("query", query.as_str())], 1);
        }
        self.trace.emit(
            self.now,
            "event",
            format!(
                "query {}: {} tuple without id skipped",
                plan.query_id, plan.event_kind
            ),
        );
    }

    /// Shared eval-error bookkeeping: counter and obs metric, then returns
    /// whether this is the first error for `(query, conjunct)` — the caller
    /// owns the trace line because only it has the error value (the scalar
    /// path has it in hand; the vectorized path re-evaluates lazily).
    fn record_eval_error(&mut self, plan: &crate::AqPlan, idx: usize) -> bool {
        self.raw_stats.eval_errors += 1;
        if let Some(m) = &self.obs {
            let query = plan.query_id.to_string();
            let conjunct = idx.to_string();
            m.incr(
                "aorta_eval_errors",
                &[("conjunct", conjunct.as_str()), ("query", query.as_str())],
                1,
            );
        }
        self.eval_error_reported.insert((plan.query_id, idx))
    }

    /// Shared rising-edge firing path: event counters and trace, candidate
    /// filtering, admission verdicts, and one `ActionRequest` per action
    /// call — everything downstream of "this tuple is a rising edge".
    fn fire_event(
        &mut self,
        plan: &crate::AqPlan,
        tuple: &Tuple,
        cache: &BTreeMap<DeviceKind, Vec<Tuple>>,
    ) {
        let id_idx = self
            .registry
            .schema(plan.event_kind)
            .index_of("id")
            .expect("catalogs define id");
        let source = tuple
            .get(id_idx)
            .and_then(Value::as_i64)
            .expect("fire_event only sees tuples with an id");
        self.raw_stats.events_detected += 1;
        self.wal_emit(|| WalRecord::EdgeCommit {
            query_id: plan.query_id,
            source,
        });
        if let Some(m) = &self.obs {
            let query = plan.query_id.to_string();
            m.incr("aorta_events", &[("query", query.as_str())], 1);
        }
        self.trace.emit(
            self.now,
            "event",
            format!(
                "query {} fired on {} {}",
                plan.query_id, plan.event_kind, source
            ),
        );

        // Candidate filtering per event.
        let candidates = self.candidates_for(plan, tuple, cache);
        // The deadline derives from the AQ's trigger cadence: a periodic
        // detection is stale once the next period's event supersedes it.
        let deadline = match self.config.deadline {
            Some(budget) => self.now + budget,
            None => SimTime::MAX,
        };
        for call in &plan.actions {
            self.raw_stats.requests += 1;
            let verdict = self.admission_verdict(plan.query_id);
            if let Some(m) = &self.obs {
                let decision = match verdict {
                    AdmissionVerdict::Admit => "admit",
                    AdmissionVerdict::Degrade => "degrade",
                    AdmissionVerdict::Shed => "shed",
                };
                m.incr("aorta_admission_decisions", &[("decision", decision)], 1);
                if let Some(bucket) = &self.admission_bucket {
                    // Pure read: the gauge never refills or drains the
                    // bucket, so observing it cannot perturb admission.
                    m.gauge_set(
                        "aorta_admission_tokens_e6",
                        &[],
                        bucket.tokens_e6(self.now) as i64,
                    );
                }
            }
            let degraded = match verdict {
                AdmissionVerdict::Shed => {
                    self.raw_stats.shed += 1;
                    self.wal_stage(plan.query_id, LifecycleStage::Shed);
                    self.trace.emit(
                        self.now,
                        "admission",
                        format!("query {}: request shed at admission", plan.query_id),
                    );
                    continue;
                }
                AdmissionVerdict::Degrade => {
                    self.wal_stage(plan.query_id, LifecycleStage::Degraded);
                    self.trace.emit(
                        self.now,
                        "admission",
                        format!("query {}: admitted degraded (brownout)", plan.query_id),
                    );
                    true
                }
                AdmissionVerdict::Admit => {
                    self.wal_stage(plan.query_id, LifecycleStage::Admitted);
                    false
                }
            };
            let request = ActionRequest {
                query_id: plan.query_id,
                action: call.action.clone(),
                event_tuple: tuple.clone().tagged(plan.query_id),
                event_binding: plan.event_binding.clone(),
                event_kind: plan.event_kind,
                device_binding: plan.device.as_ref().map(|d| (d.binding.clone(), d.kind)),
                args: call.args.clone(),
                candidates: candidates.clone(),
                created_at: self.now,
                deadline,
                degraded,
                attempts: 0,
                hops: 0,
            };
            self.operators
                .entry(call.action.clone())
                .or_default()
                .push(request);
        }
    }

    /// Vectorized detection (the default path): one batch phase over the
    /// shared [`crate::PredicateIndex`], a per-plan replay of side effects
    /// for the few *affected* plans, and a commit of the shared edge state.
    ///
    /// The replay reproduces the scalar loop's observable behaviour byte for
    /// byte — same counters, same trace lines in the same order, same
    /// requests — because affected plans are visited in catalog name order
    /// (the scalar iteration order) and each replay walks the batch
    /// tuple-by-tuple exactly as the scalar loop would have.
    fn detect_vectorized(&mut self, cache: &BTreeMap<DeviceKind, Vec<Tuple>>) {
        let outcomes = {
            let ctx = EvalContext {
                registry: &self.registry,
            };
            self.pindex.plan_epoch(cache, &ctx)
        };
        if let Some(m) = &self.obs {
            m.incr(detect_metrics::INDEXED_EVALS, &[], outcomes.tally.indexed);
            m.incr(detect_metrics::FALLBACK_EVALS, &[], outcomes.tally.fallback);
            m.incr(detect_metrics::CONJUNCT_EVALS, &[], outcomes.tally.total);
            for (kind, tuples) in cache {
                let kind = kind.to_string();
                m.incr(
                    detect_metrics::BATCH_TUPLES,
                    &[("kind", kind.as_str())],
                    tuples.len() as u64,
                );
            }
            m.gauge_set(
                detect_metrics::INDEX_CMPS,
                &[],
                self.pindex.cmp_count() as i64,
            );
            m.gauge_set(
                detect_metrics::INDEX_GROUPS,
                &[],
                self.pindex.group_count() as i64,
            );
        }
        // Windowed plans never register in the predicate index — their
        // per-source aggregate state has no stateless batch form — so they
        // always detect through the scalar walk. Merging them into the
        // affected list *by catalog name* preserves the scalar loop's
        // plan order, which is what keeps the two detection modes'
        // traces byte-identical.
        let windowed: Vec<String> = self
            .catalog
            .queries()
            .filter(|p| !p.windowed.is_empty())
            .map(|p| p.name.clone())
            .collect();
        let mut windowed = windowed.into_iter().peekable();
        for (name, qid) in &outcomes.affected {
            while windowed.peek().is_some_and(|w| w.as_str() < name.as_str()) {
                let wname = windowed.next().expect("peeked above");
                self.detect_windowed_plan(&wname, cache);
            }
            // The plan clone is per *affected* plan, not per registered plan:
            // in the steady state (no edges, no errors) an epoch clones
            // nothing at all, which is what keeps detection sub-linear in the
            // number of registered AQs.
            let Some(plan) = self.catalog.query(name).cloned() else {
                continue;
            };
            let epoch = &outcomes.groups[outcomes.by_query[qid]];
            let sources = &outcomes.sources[&plan.event_kind];
            let pending = outcomes.pending.get(qid);
            self.replay_plan(&plan, epoch, sources, pending, cache);
        }
        for wname in windowed {
            self.detect_windowed_plan(&wname, cache);
        }
        self.pindex.commit_epoch(outcomes.commits);
    }

    /// Runs one windowed plan through the scalar walk during a vectorized
    /// epoch. The cache-membership guard matters for externally supplied
    /// single-kind batches ([`Aorta::detect_on_batch`]): a windowed plan
    /// over a kind absent from the batch has nothing to detect.
    fn detect_windowed_plan(&mut self, name: &str, cache: &BTreeMap<DeviceKind, Vec<Tuple>>) {
        if let Some(plan) = self.catalog.query(name).cloned() {
            if cache.contains_key(&plan.event_kind) {
                self.detect_events(&plan, cache);
            }
        }
    }

    /// Phase B: replays the scalar loop's per-tuple side effects for one
    /// affected plan from the batch outcomes computed in phase A.
    fn replay_plan(
        &mut self,
        plan: &crate::AqPlan,
        epoch: &GroupEpoch,
        sources: &[Option<i64>],
        pending: Option<&BTreeSet<i64>>,
        cache: &BTreeMap<DeviceKind, Vec<Tuple>>,
    ) {
        let tuples = cache.get(&plan.event_kind).expect("scanned above");
        // This member's view of the per-source edge within the batch: a
        // source seen earlier in the same batch overrides the pre-epoch
        // state, exactly like the scalar loop's in-place `edge.insert`.
        let mut local: BTreeMap<i64, bool> = BTreeMap::new();
        for (t, tuple) in tuples.iter().enumerate() {
            let matched = match epoch.stops[t] {
                TupleOutcome::Idless => {
                    self.note_idless(plan);
                    continue;
                }
                TupleOutcome::Stop { idx, error } => {
                    if error && self.record_eval_error(plan, idx) {
                        // First error for this (query, conjunct): re-evaluate
                        // the conjunct to recover the error message the
                        // scalar path would have traced. Evaluation is pure
                        // over the tuple, so the error is deterministic.
                        let schema = self.registry.schema(plan.event_kind);
                        let ctx = EvalContext {
                            registry: &self.registry,
                        };
                        let env = Env::new().bind(&plan.event_binding, schema, tuple);
                        if let Err(e) = eval_predicate(&plan.event_conjuncts[idx], &env, &ctx) {
                            self.trace.emit(
                                self.now,
                                "eval_error",
                                format!(
                                    "query {} conjunct {idx} failed to evaluate: {e}",
                                    plan.query_id
                                ),
                            );
                        }
                    }
                    false
                }
                TupleOutcome::Matched => true,
            };
            let source = sources[t].expect("non-idless outcomes have a source");
            let was = match local.get(&source) {
                Some(&w) => w,
                // A source this member has never observed (it joined the
                // group after the shared edge was recorded) reads as false,
                // matching the scalar map's "absent" state.
                None if pending.is_some_and(|p| p.contains(&source)) => false,
                None => epoch.pre_edge.get(&source).copied().unwrap_or(false),
            };
            local.insert(source, matched);
            if !matched || was {
                continue; // not a rising edge
            }
            self.fire_event(plan, tuple, cache);
        }
    }

    /// Runs one detection pass over an externally supplied scan batch,
    /// honouring `EngineConfig::vectorized_detect`, then dispatches whatever
    /// it produced. Test-only hook for the differential harness; not part of
    /// the public API surface.
    #[doc(hidden)]
    pub fn detect_on_batch(&mut self, kind: DeviceKind, tuples: Vec<Tuple>) {
        let mut cache: BTreeMap<DeviceKind, Vec<Tuple>> = BTreeMap::new();
        cache.insert(kind, tuples);
        if self.config.pushdown {
            self.account_pushdown(&cache);
        }
        if self.config.vectorized_detect {
            self.detect_vectorized(&cache);
        } else {
            let plans: Vec<crate::AqPlan> = self
                .catalog
                .queries()
                .filter(|p| p.event_kind == kind)
                .cloned()
                .collect();
            for plan in &plans {
                self.detect_events(plan, &cache);
            }
        }
        self.dispatch_pending();
    }

    fn candidates_for(
        &mut self,
        plan: &crate::AqPlan,
        event_tuple: &Tuple,
        cache: &BTreeMap<DeviceKind, Vec<Tuple>>,
    ) -> Vec<(DeviceId, Tuple)> {
        let Some(device_part) = &plan.device else {
            return Vec::new();
        };
        let device_schema = self.registry.schema(device_part.kind).clone();
        let event_schema = self.registry.schema(plan.event_kind).clone();
        let id_idx = device_schema.index_of("id").expect("catalogs define id");
        let mut out = Vec::new();
        // Eval errors and unusable ids are collected during the pass (the
        // eval context borrows the registry) and surfaced after it. A
        // device-join conjunct that *errors* excludes the candidate — same
        // as false — but is counted and traced like an event-conjunct
        // error: folding it into false would hide a permanently broken
        // join predicate forever.
        let mut errors: Vec<(usize, String)> = Vec::new();
        let mut bad_ids: Vec<Option<i64>> = Vec::new();
        {
            let ctx = EvalContext {
                registry: &self.registry,
            };
            for dt in cache.get(&device_part.kind).into_iter().flatten() {
                let env = Env::new()
                    .bind(&plan.event_binding, &event_schema, event_tuple)
                    .bind(&device_part.binding, &device_schema, dt);
                let mut pass = true;
                for (idx, c) in device_part.conjuncts.iter().enumerate() {
                    match eval_predicate(c, &env, &ctx) {
                        Ok(true) => {}
                        Ok(false) => {
                            pass = false;
                            break;
                        }
                        Err(e) => {
                            errors.push((idx, e.to_string()));
                            pass = false;
                            break;
                        }
                    }
                }
                if !pass {
                    continue;
                }
                // A device id outside the u32 range cannot address a real
                // device: `as u32` would silently truncate it onto some
                // *other* device's id. Reject and count instead.
                match dt.get(id_idx).and_then(Value::as_i64) {
                    Some(raw) if u32::try_from(raw).is_ok() => {
                        out.push((DeviceId::new(device_part.kind, raw as u32), dt.clone()));
                    }
                    other => bad_ids.push(other),
                }
            }
        }
        for (idx, msg) in errors {
            // Dedup in the same (query, conjunct) space as event-conjunct
            // errors, offset past the event conjuncts so a device conjunct
            // can never collide with an event conjunct's key.
            if self.record_eval_error(plan, plan.event_conjuncts.len() + idx) {
                self.trace.emit(
                    self.now,
                    "eval_error",
                    format!(
                        "query {} device conjunct {idx} failed to evaluate: {msg}",
                        plan.query_id
                    ),
                );
            }
        }
        for raw in bad_ids {
            self.note_bad_device_id(plan, device_part.kind, raw);
        }
        out
    }

    /// Bookkeeping for a joined device tuple whose `id` cannot name a
    /// device (missing, non-integer, negative, or past `u32::MAX`):
    /// counter, obs metric, and one trace line per query.
    fn note_bad_device_id(&mut self, plan: &crate::AqPlan, kind: DeviceKind, raw: Option<i64>) {
        self.raw_stats.bad_device_ids += 1;
        if let Some(m) = &self.obs {
            let query = plan.query_id.to_string();
            m.incr("aorta_bad_device_ids", &[("query", query.as_str())], 1);
        }
        if self.bad_id_reported.insert(plan.query_id) {
            let shown = match raw {
                Some(v) => v.to_string(),
                None => "<none>".to_string(),
            };
            self.trace.emit(
                self.now,
                "event",
                format!(
                    "query {}: {kind} candidate with unusable id {shown} skipped",
                    plan.query_id
                ),
            );
        }
    }

    // --- dispatch ------------------------------------------------------------

    fn dispatch_pending(&mut self) {
        let action_names: Vec<String> = self.operators.keys().cloned().collect();
        for name in action_names {
            let batch = self
                .operators
                .get_mut(&name)
                .map(|op| op.drain())
                .unwrap_or_default();
            if batch.is_empty() {
                continue;
            }
            self.dispatch_batch(&name, batch);
        }
    }

    fn dispatch_batch(&mut self, action: &str, mut batch: Vec<ActionRequest>) {
        let Some(def) = self.catalog.action(action).cloned() else {
            self.raw_stats.action_errors += batch.len() as u64;
            return;
        };

        // Probe every distinct candidate once per batch (§4).
        let mut devices: Vec<DeviceId> = batch
            .iter()
            .flat_map(|r| r.candidates.iter().map(|(d, _)| *d))
            .collect();
        devices.sort_unstable();
        devices.dedup();
        let mut status: BTreeMap<DeviceId, PhysicalStatus> = BTreeMap::new();
        for &d in &devices {
            // An open breaker excludes the device before any probe is spent
            // on it; a half-open one admits exactly one probation attempt.
            if let Some(bank) = self.breakers.as_mut() {
                match bank.decide(d, self.now) {
                    BreakerDecision::Reject => {
                        self.trace.emit(
                            self.now,
                            "breaker",
                            format!("{d} open, excluded without probing"),
                        );
                        continue;
                    }
                    BreakerDecision::Probation => {
                        self.trace.emit(
                            self.now,
                            "breaker",
                            format!("{d} half-open, probation probe"),
                        );
                    }
                    BreakerDecision::Admit => {}
                }
            }
            let probed = if self.config.probe_enabled {
                match self
                    .prober
                    .probe(&mut self.registry, d, self.now, &mut self.rng)
                {
                    aorta_net::ProbeOutcome::Available { status, .. } => Some(status),
                    _ => None,
                }
            } else {
                self.unprobed_status(d)
            };
            if self.config.probe_enabled {
                self.breaker_note(d, probed.is_some());
            }
            match probed {
                Some(s) => {
                    status.insert(d, s);
                }
                None => self.trace.emit(
                    self.now,
                    "probe",
                    format!("{d} unavailable, excluded from device selection"),
                ),
            }
        }

        // LERFA ordering: least eligible (fewest available candidates) first.
        if self.config.dispatch == DispatchPolicy::Scheduled && batch.len() > 1 {
            batch.sort_by_key(|r| {
                r.candidates
                    .iter()
                    .filter(|(d, _)| status.contains_key(d))
                    .count()
            });
        }

        // Per-device predicted state over the batch.
        let mut free_at: BTreeMap<DeviceId, SimTime> = BTreeMap::new();
        let mut predicted: BTreeMap<DeviceId, PhysicalStatus> = status.clone();
        for &d in status.keys() {
            let free = if self.config.sync_enabled {
                self.locks.locked_until(d, self.now).unwrap_or(self.now)
            } else {
                self.now
            };
            free_at.insert(d, free);
        }

        // Phase 1: assignment (LERFA's min workload-plus-cost rule).
        let batch_size = batch.len();
        let mut lanes: BTreeMap<DeviceId, Vec<(ActionRequest, SimDuration)>> = BTreeMap::new();
        for request in batch {
            let mut best: Option<(SimTime, SimDuration, DeviceId)> = None;
            for (d, _) in &request.candidates {
                let Some(st) = predicted.get(d) else { continue };
                let Some(cost) = self.estimate_request_cost(&def, &request, *d, st) else {
                    continue;
                };
                let finish = free_at[d] + cost;
                if best.is_none_or(|(bf, _, _)| finish < bf) {
                    best = Some((finish, cost, *d));
                }
            }
            let Some((finish, cost, d)) = best else {
                if self.config.escalate_exhausted {
                    self.escalate(request);
                } else {
                    self.raw_stats.no_candidate += 1;
                    self.wal_stage(request.query_id, LifecycleStage::NoCandidate);
                    self.trace.emit(
                        self.now,
                        "dispatch",
                        format!("query {}: no available candidate", request.query_id),
                    );
                }
                continue;
            };
            let start = free_at[&d];
            if start > request.created_at + self.config.request_timeout {
                self.raw_stats.timed_out += 1;
                self.wal_stage(request.query_id, LifecycleStage::TimedOut);
                self.trace.emit(
                    self.now,
                    "dispatch",
                    format!(
                        "query {}: earliest start on {d} misses the request deadline",
                        request.query_id
                    ),
                );
                continue;
            }
            // Deadline-aware rejection: assigning work whose *predicted*
            // completion already overruns its deadline only burns device time
            // on a result that will be cancelled — shed it up front.
            if finish > request.deadline {
                self.raw_stats.shed += 1;
                self.wal_stage(request.query_id, LifecycleStage::Shed);
                self.trace.emit(
                    self.now,
                    "deadline",
                    format!(
                        "query {}: predicted finish on {d} past the deadline, shed",
                        request.query_id
                    ),
                );
                continue;
            }
            self.wal_stage(request.query_id, LifecycleStage::Dispatched);
            self.trace.emit(
                self.now,
                "dispatch",
                format!(
                    "query {} assigned to {d} (estimate {cost})",
                    request.query_id
                ),
            );
            // Without synchronization the optimizer does not know device
            // workload, so it never queues — every request fires at once
            // and interference ensues (§6.2).
            if self.config.sync_enabled {
                free_at.insert(d, finish);
            }
            if let Some(next) = self.predict_next_status(&def, &request, d, &predicted[&d]) {
                predicted.insert(d, next);
            }
            lanes.entry(d).or_default().push((request, cost));
        }

        if let Some(m) = &self.obs {
            m.span(
                SpanKind::Schedule,
                self.now,
                SimDuration::ZERO,
                &format!("action={action} batch={batch_size} lanes={}", lanes.len()),
            );
        }

        // Phase 2: per-device SRFE ordering + scheduling of Execute events.
        for (d, mut lane) in lanes {
            let base = if self.config.sync_enabled {
                self.locks.locked_until(d, self.now).unwrap_or(self.now)
            } else {
                self.now
            };
            // The gap between "now" and the device's lock horizon is time
            // this lane spends queued behind the lock holder.
            let lock_wait = base.saturating_duration_since(self.now);
            if !lock_wait.is_zero() {
                if let Some(m) = &self.obs {
                    let device = d.to_string();
                    m.observe("aorta_lock_wait", &[("device", device.as_str())], lock_wait);
                    m.span(
                        SpanKind::LockWait,
                        self.now,
                        lock_wait,
                        &format!("device={d} wait={lock_wait}"),
                    );
                }
            }
            // SRFE: greedy nearest-first chain from the device's probed
            // status (re-estimating after each predicted status change).
            // The MinCost policy ablates this: each device services its
            // queue in assignment order.
            if self.config.dispatch == DispatchPolicy::MinCost {
                let mut t = if self.config.sync_enabled {
                    base
                } else {
                    self.now
                };
                let mut holder = None;
                for (req, cost) in lane {
                    holder.get_or_insert(req.query_id);
                    let start = if self.config.sync_enabled {
                        t.max(self.now)
                    } else {
                        self.now
                    };
                    self.queue.push(
                        start,
                        EngineEvent::Execute {
                            device: d,
                            request: req,
                        },
                    );
                    t = start + cost + SimDuration::from_millis(5);
                }
                if self.config.sync_enabled {
                    // Audited fold: `holder` is set by the first queued
                    // request, so `None` only survives an empty lane — and
                    // an empty lane locks a zero-length window under a
                    // query id that owns nothing. Harmless, not hidden.
                    let q = holder.unwrap_or(0);
                    if !self.locks.try_lock(d, q, self.now, t) {
                        self.locks.extend(d, self.now, t);
                    }
                }
                continue;
            }
            let mut ordered: Vec<(ActionRequest, SimDuration)> = Vec::with_capacity(lane.len());
            let mut st = status.get(&d).cloned();
            while !lane.is_empty() {
                let (idx, cost) = {
                    let mut best = (0usize, SimDuration::MAX);
                    for (i, (req, est)) in lane.iter().enumerate() {
                        let c = match &st {
                            Some(s) => self.estimate_request_cost(&def, req, d, s).unwrap_or(*est),
                            None => *est,
                        };
                        if c < best.1 {
                            best = (i, c);
                        }
                    }
                    best
                };
                let (req, _) = lane.swap_remove(idx);
                if let Some(s) = &st {
                    if let Some(next) = self.predict_next_status(&def, &req, d, s) {
                        st = Some(next);
                    }
                }
                ordered.push((req, cost));
            }

            // Cost estimates are rounded to whole microseconds, so queued
            // starts carry a small guard to keep the next command strictly
            // after the previous one completes on the device.
            const SCHEDULE_GUARD: SimDuration = SimDuration::from_millis(5);
            let mut t = base;
            let mut holder = None;
            for (req, cost) in ordered {
                holder.get_or_insert(req.query_id);
                let start = if self.config.sync_enabled {
                    t.max(self.now)
                } else {
                    self.now
                };
                self.queue.push(
                    start,
                    EngineEvent::Execute {
                        device: d,
                        request: req,
                    },
                );
                t = start + cost + SCHEDULE_GUARD;
            }
            if self.config.sync_enabled {
                // Audited fold: same invariant as the fast path above —
                // `None` means an empty lane and a vacuous lock window.
                let q = holder.unwrap_or(0);
                if !self.locks.try_lock(d, q, self.now, t) {
                    self.locks.extend(d, self.now, t);
                }
            }
        }
    }

    /// Status without probing: the engine's last-known view.
    fn unprobed_status(&mut self, d: DeviceId) -> Option<PhysicalStatus> {
        let entry = self.registry.get(d)?;
        if !entry.online {
            return None;
        }
        Some(match &entry.sim {
            aorta_net::DeviceSim::Camera(c) => PhysicalStatus::CameraHead(c.rest_position()),
            aorta_net::DeviceSim::Mote(m) => PhysicalStatus::SensorLink {
                depth: m.depth(),
                battery_volts: m.battery_volts(),
            },
            aorta_net::DeviceSim::Phone(_) => PhysicalStatus::PhoneCoverage { in_coverage: true },
            aorta_net::DeviceSim::Rfid(_) => PhysicalStatus::RfidField { tags_in_range: 0 },
        })
    }

    /// Cost estimate for one request on one device (profile-driven, §2.3).
    fn estimate_request_cost(
        &self,
        def: &ActionDef,
        request: &ActionRequest,
        device: DeviceId,
        status: &PhysicalStatus,
    ) -> Option<SimDuration> {
        let mut ctx = CostContext::from_status(status);
        if def.kind() == DeviceKind::Camera {
            let target = self.photo_target(request, device)?;
            ctx = ctx.with_target(target);
            // A probe may be absent for unprobed dispatch; default home.
            if ctx.from.is_none() {
                ctx.from = Some(PtzPosition::HOME);
            }
        }
        let table = self.registry.cost_table(def.kind());
        // Brownout: a degraded photo request is costed (and later executed)
        // at lo-res, whose capture op is cheaper than the full-quality one.
        let lo_res;
        let profile = if request.degraded && def.kind() == DeviceKind::Camera {
            lo_res = crate::actions::ActionProfile::photo_lo_res();
            &lo_res
        } else {
            &def.profile
        };
        estimate_action_cost(profile, table, &ctx).ok()
    }

    fn predict_next_status(
        &self,
        def: &ActionDef,
        request: &ActionRequest,
        device: DeviceId,
        status: &PhysicalStatus,
    ) -> Option<PhysicalStatus> {
        if def.kind() == DeviceKind::Camera {
            self.photo_target(request, device)
                .map(PhysicalStatus::CameraHead)
        } else {
            Some(*status)
        }
    }

    /// The head position a photo request aims `device` at: the first
    /// Location-typed argument, projected through the camera's mount.
    fn photo_target(&self, request: &ActionRequest, device: DeviceId) -> Option<PtzPosition> {
        let loc = self
            .arg_values(request, device)?
            .into_iter()
            .find_map(|v| v.as_location().copied())?;
        let cam = self.registry.camera(device)?;
        Some(cam.spec().clamp(cam.aim_at(&loc)))
    }

    /// Evaluates the request's argument expressions against the event tuple
    /// and (when available) the device's candidate tuple.
    fn arg_values(&self, request: &ActionRequest, device: DeviceId) -> Option<Vec<Value>> {
        let event_schema = self.registry.schema(request.event_kind).clone();
        let device_tuple = request
            .candidates
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, t)| t.clone());
        let device_schema = request
            .device_binding
            .as_ref()
            .map(|(_, k)| self.registry.schema(*k).clone());
        let ctx = EvalContext {
            registry: &self.registry,
        };
        let mut env = Env::new().bind(&request.event_binding, &event_schema, &request.event_tuple);
        if let (Some((binding, _)), Some(schema), Some(tuple)) = (
            request.device_binding.as_ref(),
            device_schema.as_ref(),
            device_tuple.as_ref(),
        ) {
            env = env.bind(binding, schema, tuple);
        }
        let mut out = Vec::with_capacity(request.args.len());
        for a in &request.args {
            out.push(eval_expr(a, &env, &ctx).ok()?);
        }
        Some(out)
    }

    // --- execution -----------------------------------------------------------

    /// After a device-level failure, re-dispatches the request to its
    /// remaining candidates (when retries are configured). Returns whether
    /// a retry was launched — if so, the failure is counted as a retry
    /// rather than a terminal failure.
    fn maybe_retry(&mut self, request: &ActionRequest, failed_device: DeviceId) -> bool {
        if request.attempts >= self.config.retry_failed {
            return false;
        }
        let mut retry = request.clone();
        retry.attempts += 1;
        retry.candidates.retain(|(d, _)| *d != failed_device);
        if retry.candidates.is_empty() {
            return false;
        }
        self.raw_stats.retries += 1;
        self.wal_stage(retry.query_id, LifecycleStage::Retried);
        self.trace.emit(
            self.now,
            "dispatch",
            format!(
                "query {}: retrying after failure on {failed_device} (attempt {})",
                retry.query_id, retry.attempts
            ),
        );
        let action = retry.action.clone();
        self.dispatch_batch(&action, vec![retry]);
        true
    }

    fn record_latency(&mut self, request: &ActionRequest, completed_at: SimTime) {
        let latency = completed_at.saturating_duration_since(request.created_at);
        self.raw_stats.latency_total_us += latency.as_micros();
        self.raw_stats.latency_count += 1;
        self.latency_samples.record(latency);
        if let Some(m) = &self.obs {
            m.observe(
                "aorta_action_latency",
                &[("action", request.action.as_str())],
                latency,
            );
            m.span(
                SpanKind::Execute,
                completed_at,
                latency,
                &format!("query={} action={}", request.query_id, request.action),
            );
        }
        // A success that lands after its deadline is still a success for
        // conservation, but a witness that enforcement let one slip: photo
        // durations are predicted exactly, so this stays zero for them.
        if completed_at > request.deadline {
            self.raw_stats.late_successes += 1;
        }
    }

    /// Admission control for one would-be request, evaluated at event
    /// detection (before any operator/scheduler state is touched).
    ///
    /// Two gates compose: the token bucket paces raw arrival rate, and the
    /// predicted backlog makespan — pending work times the observed mean
    /// action latency — drives brownout. Past `brownout_multiple`×SLO new
    /// requests degrade to lo-res; past `shed_multiple`×SLO they are shed
    /// outright unless their query is protected (then they degrade instead).
    fn admission_verdict(&mut self, query_id: u32) -> AdmissionVerdict {
        let Some(cfg) = &self.config.admission else {
            return AdmissionVerdict::Admit;
        };
        let slo_us = cfg.slo.as_micros() as f64;
        let brownout_at = slo_us * cfg.brownout_multiple;
        let shed_at = slo_us * cfg.shed_multiple;
        let protected = query_id < cfg.protected_queries;
        let backlog = self.pending_requests();
        let mean_us = self
            .raw_stats
            .latency_total_us
            .checked_div(self.raw_stats.latency_count)
            // Until a completion has been observed, assume a nominal second
            // per action so cold-start backlog still registers as pressure.
            .unwrap_or(1_000_000);
        let makespan_us = backlog.saturating_mul(mean_us) as f64;
        let band = if makespan_us > shed_at {
            if protected {
                AdmissionVerdict::Degrade
            } else {
                AdmissionVerdict::Shed
            }
        } else if makespan_us > brownout_at {
            AdmissionVerdict::Degrade
        } else {
            AdmissionVerdict::Admit
        };
        if matches!(band, AdmissionVerdict::Shed) {
            return band;
        }
        // Rate gate last, so a request shed on backlog never burns a token.
        if let Some(bucket) = self.admission_bucket.as_mut() {
            if !bucket.try_take(self.now) {
                return AdmissionVerdict::Shed;
            }
        }
        band
    }

    /// Cancels a request whose deadline has passed: counts it expired and —
    /// the overload analogue of the crash cleanup path — releases the
    /// device's lock if this request holds it and no later work is queued
    /// behind it, so an expiry never strands a healthy device locked.
    fn expire_request(&mut self, request: &ActionRequest, device: DeviceId) {
        self.raw_stats.expired += 1;
        self.wal_stage(request.query_id, LifecycleStage::Expired);
        self.trace.emit(
            self.now,
            "deadline",
            format!(
                "query {}: deadline passed before execution on {device}, cancelled",
                request.query_id
            ),
        );
        if self.config.sync_enabled && self.locks.holder(device, self.now) == Some(request.query_id)
        {
            let others_queued = self
                .queue
                .iter()
                .any(|(_, e)| matches!(e, EngineEvent::Execute { device: d, .. } if *d == device));
            if !others_queued {
                self.locks.unlock(device);
                self.trace.emit(
                    self.now,
                    "deadline",
                    format!("{device} lock released after expiry"),
                );
            }
        }
    }

    /// Feeds one device-level outcome to the breaker bank (when enabled),
    /// tracing the state transitions it causes.
    fn breaker_note(&mut self, device: DeviceId, ok: bool) {
        let Some(bank) = self.breakers.as_mut() else {
            return;
        };
        if ok {
            if bank.record_success(device) {
                self.trace.emit(
                    self.now,
                    "breaker",
                    format!(
                        "{device} closed after probation success (health {:.2})",
                        bank.health(device)
                    ),
                );
                let at = self.now;
                self.wal_emit(|| WalRecord::Breaker {
                    device,
                    state: 0,
                    at,
                });
            }
        } else if bank.record_failure(device, self.now, &mut self.rng) {
            self.trace.emit(
                self.now,
                "breaker",
                format!(
                    "{device} opened after repeated failures (health {:.2})",
                    bank.health(device)
                ),
            );
            let at = self.now;
            self.wal_emit(|| WalRecord::Breaker {
                device,
                state: 1,
                at,
            });
        }
    }

    fn execute_request(&mut self, request: &ActionRequest, device: DeviceId) {
        let Some(def) = self.catalog.action(&request.action).cloned() else {
            self.raw_stats.action_errors += 1;
            self.wal_stage(request.query_id, LifecycleStage::Failed);
            return;
        };
        self.wal_stage(request.query_id, LifecycleStage::Executing);
        let args = self.arg_values(request, device).unwrap_or_default();
        match &def.handler {
            ActionHandler::Photo => self.execute_photo(request, device),
            ActionHandler::SendPhoto => {
                let body = args
                    .iter()
                    .rev()
                    .find_map(|v| v.as_str().map(str::to_string))
                    .unwrap_or_else(|| "photo.jpg".to_string());
                let now = self.now;
                let delivered = self
                    .registry
                    .get_mut(device)
                    .and_then(|e| e.sim.as_phone_mut())
                    .and_then(|p| {
                        p.deliver(now, aorta_device::MessageKind::Mms, body, &mut self.rng)
                    });
                match delivered {
                    Some(done) => {
                        self.raw_stats.executed += 1;
                        self.raw_stats.messages_delivered += 1;
                        self.wal_stage(request.query_id, LifecycleStage::Completed);
                        self.record_latency(request, done);
                        self.breaker_note(device, true);
                        if self.config.sync_enabled {
                            self.locks.extend(device, self.now, done);
                        }
                    }
                    None => {
                        self.breaker_note(device, false);
                        if !self.maybe_retry(request, device) {
                            self.raw_stats.connect_failures += 1;
                            self.wal_stage(request.query_id, LifecycleStage::Failed);
                        }
                    }
                }
            }
            ActionHandler::Beep => {
                let now = self.now;
                // Audited fold: `None` means the device de-registered or
                // is not a mote — either way the beep was not delivered,
                // and `false` routes into the failure/retry path below
                // rather than vanishing.
                let ok = self
                    .registry
                    .get_mut(device)
                    .and_then(|e| e.sim.as_mote_mut())
                    .map(|m| m.beep(now, &mut self.rng))
                    .unwrap_or(false);
                if ok {
                    self.raw_stats.executed += 1;
                    self.raw_stats.beeps_delivered += 1;
                    self.wal_stage(request.query_id, LifecycleStage::Completed);
                    self.record_latency(request, now);
                    self.breaker_note(device, true);
                } else {
                    self.breaker_note(device, false);
                    if !self.maybe_retry(request, device) {
                        self.raw_stats.connect_failures += 1;
                        self.wal_stage(request.query_id, LifecycleStage::Failed);
                    }
                }
            }
            ActionHandler::Custom(handler) => {
                let handler = handler.clone();
                let now = self.now;
                match handler(&mut self.registry, device, &args, now, &mut self.rng) {
                    Ok(done) => {
                        self.raw_stats.executed += 1;
                        self.wal_stage(request.query_id, LifecycleStage::Completed);
                        self.record_latency(request, done);
                        self.breaker_note(device, true);
                        if self.config.sync_enabled {
                            self.locks.extend(device, self.now, done);
                        }
                    }
                    Err(_) => {
                        self.breaker_note(device, false);
                        self.raw_stats.action_errors += 1;
                        self.wal_stage(request.query_id, LifecycleStage::Failed);
                    }
                }
            }
        }
    }

    fn execute_photo(&mut self, request: &ActionRequest, device: DeviceId) {
        let Some(target) = self.photo_target(request, device) else {
            self.raw_stats.action_errors += 1;
            self.wal_stage(request.query_id, LifecycleStage::Failed);
            return;
        };
        let now = self.now;
        // Synchronization invariant: never command a busy device. If the
        // previous action ran longer than estimated, wait it out.
        if self.config.sync_enabled {
            if let Some(cam) = self.registry.camera(device) {
                if cam.is_busy(now) {
                    let retry = cam
                        .photos()
                        .last()
                        .map(|p| p.completes_at)
                        .unwrap_or(now + SimDuration::from_millis(100))
                        .max(now + SimDuration::from_millis(1));
                    self.locks.extend(device, now, retry);
                    self.queue.push(
                        retry,
                        EngineEvent::Execute {
                            request: request.clone(),
                            device,
                        },
                    );
                    return;
                }
            }
        }
        // Brownout: degraded requests capture at the cheaper lo-res size.
        let size = if request.degraded {
            PhotoSize::Small
        } else {
            PhotoSize::Medium
        };
        // Last-chance deadline check with the camera's *actual* position:
        // photo duration is deterministic given start pose and target, so a
        // completion past the deadline can be predicted exactly here and the
        // shot cancelled before any device time is spent.
        if request.deadline != SimTime::MAX {
            if let Some(cam) = self.registry.camera(device) {
                let cost = cam.estimate_photo_cost(cam.position_at(now), target, size);
                if now + cost > request.deadline {
                    self.expire_request(request, device);
                    return;
                }
            }
        }
        let Some(cam) = self.registry.camera_mut(device) else {
            self.raw_stats.action_errors += 1;
            self.wal_stage(request.query_id, LifecycleStage::Failed);
            return;
        };
        match cam.begin_photo(now, target, size, &mut self.rng) {
            Ok(record) => {
                if request.degraded {
                    self.raw_stats.degraded += 1;
                    self.trace.emit(
                        now,
                        "brownout",
                        format!("query {}: lo-res photo on {device}", request.query_id),
                    );
                } else {
                    self.raw_stats.executed += 1;
                }
                self.wal_stage(request.query_id, LifecycleStage::Completed);
                self.record_latency(request, record.completes_at);
                self.breaker_note(device, true);
                if self.config.sync_enabled {
                    self.locks.extend(device, now, record.completes_at);
                }
            }
            Err(e) => {
                self.trace
                    .emit(now, "action", format!("photo on {device} failed: {e}"));
                // Out of range is the request's fault, not the device's;
                // only the transient errors count against its breaker.
                if !matches!(e, PhotoError::OutOfRange) {
                    self.breaker_note(device, false);
                }
                // Out-of-range targets fail on every camera alike; the
                // transient errors are worth failing over.
                let retried =
                    !matches!(e, PhotoError::OutOfRange) && self.maybe_retry(request, device);
                if !retried {
                    match e {
                        PhotoError::ConnectTimeout => self.raw_stats.connect_failures += 1,
                        PhotoError::BusyRejected => self.raw_stats.busy_rejections += 1,
                        PhotoError::OutOfRange => self.raw_stats.out_of_range += 1,
                    }
                    self.wal_stage(request.query_id, LifecycleStage::Failed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Aorta, EngineConfig};
    use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
    use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimTime};

    const SNAPSHOT: &str = r#"CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

    fn eventful_engine(seed: u64) -> Aorta {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(seed), lab);
        aorta.execute_sql(SNAPSHOT).unwrap();
        aorta
    }

    #[test]
    fn crash_is_traced_and_releases_lock() {
        let mut aorta = eventful_engine(3);
        let cam = DeviceId::camera(0);
        let t_lock_end = SimTime::ZERO + SimDuration::from_mins(5);
        assert!(aorta.locks.try_lock(cam, 99, SimTime::ZERO, t_lock_end));

        let mut plan = FaultPlan::new();
        let crash_at = SimTime::ZERO + SimDuration::from_secs(10);
        plan.schedule(crash_at, FaultEvent::Crash(cam));
        aorta.inject_faults(plan);

        aorta.run_for(SimDuration::from_secs(20));
        assert!(aorta.trace().any("fault", "camera-0 crashed"));
        assert!(aorta.trace().any("failover", "lock released after crash"));
        assert!(!aorta.locks.is_locked(cam, aorta.now()));
        assert!(!aorta.registry().get(cam).unwrap().online);
    }

    #[test]
    fn recovery_brings_device_back() {
        let mut aorta = eventful_engine(4);
        let cam = DeviceId::camera(1);
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(5),
            FaultEvent::Crash(cam),
        );
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(15),
            FaultEvent::Recover(cam),
        );
        aorta.inject_faults(plan);
        aorta.run_for(SimDuration::from_secs(10));
        assert!(!aorta.registry().get(cam).unwrap().online);
        aorta.run_for(SimDuration::from_secs(10));
        assert!(aorta.registry().get(cam).unwrap().online);
        assert!(aorta.trace().any("fault", "camera-1 recovered"));
    }

    #[test]
    fn loss_burst_degrades_links_and_reverts() {
        let mut aorta = eventful_engine(5);
        let baseline = aorta.registry().link(DeviceKind::Camera).loss_prob();
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(10),
            FaultEvent::LossBurstStart { extra_loss: 0.9 },
        );
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(20),
            FaultEvent::LossBurstEnd,
        );
        aorta.inject_faults(plan);
        aorta.run_for(SimDuration::from_secs(15));
        let during = aorta.registry().link(DeviceKind::Camera).loss_prob();
        assert!((during - (baseline + 0.9)).abs() < 1e-9, "during={during}");
        aorta.run_for(SimDuration::from_secs(10));
        let after = aorta.registry().link(DeviceKind::Camera).loss_prob();
        assert!((after - baseline).abs() < 1e-9, "after={after}");
        assert!(aorta.trace().any("fault", "loss burst begins"));
        assert!(aorta.trace().any("fault", "loss burst ends"));
    }

    #[test]
    fn latency_spike_multiplies_base_latency() {
        let mut aorta = eventful_engine(6);
        let baseline = aorta.registry().link(DeviceKind::Sensor).base_latency();
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(2),
            FaultEvent::LatencySpikeStart { factor: 10.0 },
        );
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(8),
            FaultEvent::LatencySpikeEnd,
        );
        aorta.inject_faults(plan);
        aorta.run_for(SimDuration::from_secs(5));
        assert_eq!(
            aorta.registry().link(DeviceKind::Sensor).base_latency(),
            baseline.mul_f64(10.0)
        );
        aorta.run_for(SimDuration::from_secs(5));
        assert_eq!(
            aorta.registry().link(DeviceKind::Sensor).base_latency(),
            baseline
        );
    }

    #[test]
    fn every_request_is_accounted_for_under_crashes() {
        let mut aorta = eventful_engine(7);
        // Crash both cameras for a stretch covering several event epochs.
        let mut plan = FaultPlan::new();
        for idx in 0..2 {
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(50),
                FaultEvent::Crash(DeviceId::camera(idx)),
            );
            plan.schedule(
                SimTime::ZERO + SimDuration::from_mins(3),
                FaultEvent::Recover(DeviceId::camera(idx)),
            );
        }
        aorta.inject_faults(plan);
        aorta.run_for(SimDuration::from_mins(5));
        let stats = aorta.stats();
        assert!(stats.requests > 0);
        // Conservation: every admitted request is executed (possibly at
        // degraded quality), terminally failed, shed, expired, or still
        // pending — never silently dropped.
        let accounted = stats.executed
            + stats.degraded
            + stats.connect_failures
            + stats.busy_rejections
            + stats.no_candidate
            + stats.timed_out
            + stats.out_of_range
            + stats.action_errors
            + stats.orphaned
            + stats.shed
            + stats.expired
            + aorta.pending_requests();
        assert_eq!(stats.requests, accounted, "{stats:?}");
    }

    #[test]
    fn conservation_holds_with_full_overload_stack_enabled() {
        // Tight deadline + aggressive admission + breakers, under the same
        // crash storm: the extended conservation identity must still close.
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_secs(10), SimDuration::ZERO);
        let config = EngineConfig::seeded(7)
            .with_deadline(SimDuration::from_secs(3))
            .with_admission(crate::AdmissionConfig {
                rate_per_sec: 0.5,
                burst: 2.0,
                slo: SimDuration::from_secs(2),
                brownout_multiple: 0.5,
                shed_multiple: 2.0,
                protected_queries: 0,
            })
            .with_breakers(aorta_net::BreakerConfig::default());
        let mut aorta = Aorta::with_lab(config, lab);
        aorta.execute_sql(SNAPSHOT).unwrap();
        let mut plan = FaultPlan::new();
        for idx in 0..2 {
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(30),
                FaultEvent::Crash(DeviceId::camera(idx)),
            );
            plan.schedule(
                SimTime::ZERO + SimDuration::from_mins(2),
                FaultEvent::Recover(DeviceId::camera(idx)),
            );
        }
        aorta.inject_faults(plan);
        aorta.run_for(SimDuration::from_mins(5));
        let stats = aorta.stats();
        assert!(stats.requests > 0);
        assert!(
            stats.shed > 0,
            "the aggressive admission gate should shed under this load: {stats:?}"
        );
        let accounted = stats.executed
            + stats.degraded
            + stats.connect_failures
            + stats.busy_rejections
            + stats.no_candidate
            + stats.timed_out
            + stats.out_of_range
            + stats.action_errors
            + stats.orphaned
            + stats.shed
            + stats.expired
            + aorta.pending_requests();
        assert_eq!(stats.requests, accounted, "{stats:?}");
        // Deadline enforcement on photos is exact: nothing may succeed late.
        assert_eq!(stats.late_successes, 0, "{stats:?}");
    }

    #[test]
    fn fault_plan_runs_identically_for_identical_seeds() {
        let render = |seed: u64| {
            let mut aorta = eventful_engine(seed);
            let devices: Vec<DeviceId> = aorta
                .registry()
                .ids_of_kind(DeviceKind::Camera)
                .into_iter()
                .chain(aorta.registry().ids_of_kind(DeviceKind::Sensor))
                .collect();
            let plan = FaultPlan::generate(
                0xFA17,
                SimDuration::from_mins(5),
                &devices,
                &aorta_sim::FaultConfig::default(),
            );
            aorta.inject_faults(plan);
            aorta.run_for(SimDuration::from_mins(5));
            aorta.trace().render()
        };
        assert_eq!(render(11), render(11));
        assert_ne!(render(11), render(12));
    }

    /// `s.loc > 500` validates (names and arity are fine) but every
    /// evaluation errors: `loc` is a Location, not a number. The old code
    /// folded that error into `false` via `unwrap_or(false)`, so the broken
    /// query sat silent forever.
    #[test]
    fn eval_errors_are_surfaced_not_swallowed() {
        const TYPE_MISMATCH: &str = r#"CREATE AQ mismatch AS
            SELECT photo(c.ip, s.loc, "photos/admin")
            FROM sensor s, camera c
            WHERE s.loc > 500 AND coverage(c.id, s.loc)"#;
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(21).with_observability(), lab);
        aorta.execute_sql(TYPE_MISMATCH).unwrap();
        aorta.run_for(SimDuration::from_secs(5));
        let stats = aorta.stats();
        assert!(
            stats.eval_errors > 0,
            "type-mismatched predicate must be counted, got {stats:?}"
        );
        assert_eq!(
            stats.events_detected, 0,
            "an erroring conjunct never matches"
        );
        assert!(aorta
            .trace()
            .any("eval_error", "conjunct 0 failed to evaluate"));
        // One structured trace event per (query, conjunct), not per epoch.
        let traced = aorta
            .trace()
            .iter()
            .filter(|e| e.subsystem == "eval_error")
            .count();
        assert_eq!(traced, 1, "eval-error trace must be deduplicated");
        // The live labeled counter agrees with the aggregate stat.
        let snap = aorta.metrics().expect("observability is on");
        assert_eq!(snap.counter_total("aorta_eval_errors"), stats.eval_errors);
    }

    /// The batch path must handle `eval_predicate` type mismatches exactly
    /// like the scalar loop: same error count, the same single deduplicated
    /// structured trace event per (query, conjunct), and byte-identical
    /// trace output — the error message included.
    #[test]
    fn batch_path_eval_errors_match_scalar_path() {
        const TYPE_MISMATCH: &str = r#"CREATE AQ mismatch AS
            SELECT photo(c.ip, s.loc, "photos/admin")
            FROM sensor s, camera c
            WHERE s.loc > 500 AND coverage(c.id, s.loc)"#;
        let run = |config: EngineConfig| {
            let lab = PervasiveLab::standard()
                .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
            let mut aorta = Aorta::with_lab(config, lab);
            aorta.execute_sql(TYPE_MISMATCH).unwrap();
            aorta.run_for(SimDuration::from_secs(30));
            aorta
        };
        let vectorized = run(EngineConfig::seeded(21));
        let scalar = run(EngineConfig::seeded(21).with_scalar_detect());
        assert!(vectorized.stats().eval_errors > 0);
        assert_eq!(vectorized.stats(), scalar.stats());
        let dedup = |a: &Aorta| {
            a.trace()
                .iter()
                .filter(|e| e.subsystem == "eval_error")
                .count()
        };
        assert_eq!(dedup(&vectorized), 1, "batch path must dedupe the trace");
        assert_eq!(dedup(&scalar), 1);
        assert_eq!(vectorized.trace().render(), scalar.trace().render());
    }

    /// Two simultaneous matches from id-less tuples used to share the one
    /// `(query, -1)` rising-edge key: the first flipped the edge and the
    /// second was masked entirely. Now both are skipped — counted, never
    /// silently merged.
    #[test]
    fn idless_tuples_are_skipped_not_folded_onto_one_edge_key() {
        use aorta_data::{Tuple, Value};
        use std::collections::BTreeMap;

        let mut aorta = Aorta::with_lab(EngineConfig::seeded(22), PervasiveLab::standard());
        aorta.execute_sql(SNAPSHOT).unwrap();
        let plan = aorta.catalog.queries().next().unwrap().clone();
        let schema = aorta.registry.schema(DeviceKind::Sensor).clone();
        let id_idx = schema.index_of("id").unwrap();
        let accel_idx = schema.index_of("accel_x").unwrap();
        let mut values = vec![Value::Null; schema.len()];
        values[accel_idx] = Value::Int(600); // matches `s.accel_x > 500`
        assert!(values[id_idx].is_null());
        let mut cache = BTreeMap::new();
        cache.insert(
            DeviceKind::Sensor,
            vec![Tuple::new(values.clone()), Tuple::new(values)],
        );
        aorta.detect_events(&plan, &cache);
        let stats = aorta.stats();
        assert_eq!(
            stats.events_detected, 0,
            "old behavior fired one event and masked the other behind the shared -1 key"
        );
        assert_eq!(stats.idless_skipped, 2, "both skips are accounted for");
        assert_eq!(
            aorta.rising_edge_entries(),
            0,
            "no shared -1 key is created"
        );
    }

    /// `c.ip > 5` validates but every evaluation errors (`ip` is a string).
    /// The old `candidates_for` folded that error into `false` via
    /// `unwrap_or(false)`, so a permanently broken device-join predicate
    /// silently produced empty candidate sets forever.
    #[test]
    fn device_conjunct_eval_errors_are_surfaced_not_swallowed() {
        const BAD_JOIN: &str = r#"CREATE AQ badjoin AS
            SELECT photo(c.ip, s.loc, "photos/admin")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND c.ip > 5"#;
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(31).with_observability(), lab);
        aorta.execute_sql(BAD_JOIN).unwrap();
        aorta.run_for(SimDuration::from_mins(2));
        let stats = aorta.stats();
        assert!(stats.events_detected > 0, "the event side still fires");
        assert!(
            stats.eval_errors > 0,
            "device-join type mismatch must be counted, got {stats:?}"
        );
        assert!(aorta
            .trace()
            .any("eval_error", "device conjunct 0 failed to evaluate"));
        // Deduplicated like event-conjunct errors: one structured trace
        // event per (query, conjunct), not one per camera per event.
        let traced = aorta
            .trace()
            .iter()
            .filter(|e| e.subsystem == "eval_error")
            .count();
        assert_eq!(traced, 1, "device-conjunct eval-error trace must dedupe");
        let snap = aorta.metrics().expect("observability is on");
        assert_eq!(snap.counter_total("aorta_eval_errors"), stats.eval_errors);
    }

    /// A device id outside the u32 range used to be truncated by `as u32`
    /// onto some *other* device's id (2^32+3 → 3, -1 → 4294967295). Now
    /// such tuples are rejected, counted, and traced once per query.
    #[test]
    fn out_of_range_device_ids_are_rejected_not_truncated() {
        use aorta_data::{Tuple, Value};
        use std::collections::BTreeMap;

        const BEEP: &str =
            r#"CREATE AQ b AS SELECT beep(t.id) FROM sensor t, sensor s WHERE s.accel_x > 500"#;
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(32), PervasiveLab::standard());
        aorta.execute_sql(BEEP).unwrap();
        let plan = aorta.catalog.queries().next().unwrap().clone();
        let schema = aorta.registry.schema(DeviceKind::Sensor).clone();
        let id_idx = schema.index_of("id").unwrap();
        let sensor_tuple = |id: Value| {
            let mut values = vec![Value::Null; schema.len()];
            values[id_idx] = id;
            Tuple::new(values)
        };
        let mut cache = BTreeMap::new();
        cache.insert(
            DeviceKind::Sensor,
            vec![
                sensor_tuple(Value::Int(u32::MAX as i64 + 4)), // truncates to 3
                sensor_tuple(Value::Int(-1)),                  // truncates to u32::MAX
                sensor_tuple(Value::Null),                     // no usable id at all
                sensor_tuple(Value::Int(1)),                   // the only real device
            ],
        );
        let event = sensor_tuple(Value::Int(0));
        let candidates = aorta.candidates_for(&plan, &event, &cache);
        assert_eq!(
            candidates.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![DeviceId::new(DeviceKind::Sensor, 1)],
            "only the in-range id survives; nothing is truncated onto device 3"
        );
        assert_eq!(aorta.raw_stats.bad_device_ids, 3);
        let traced = aorta
            .trace()
            .iter()
            .filter(|e| e.message.contains("unusable id"))
            .count();
        assert_eq!(traced, 1, "bad-id trace is deduplicated per query");
    }

    /// The tentpole semantics end to end: `AVG(s.accel_x) OVER LAST 3`
    /// smooths the signal, so a lone spike never fires but a sustained one
    /// does — and the rising edge re-arms when the window average falls.
    /// Both detection modes must agree byte for byte (windowed plans run
    /// the scalar walk merged into the vectorized pass in name order).
    #[test]
    fn windowed_aggregates_fire_on_sustained_signal_not_spikes() {
        use aorta_data::{Tuple, Value};

        const SMOOTH: &str = r#"CREATE AQ smooth AS
            SELECT beep(t.id) FROM sensor t, sensor s
            WHERE AVG(s.accel_x) OVER LAST 3 > 700"#;
        let run = |config: EngineConfig| {
            let mut aorta = Aorta::with_lab(config, PervasiveLab::standard());
            aorta.execute_sql(SMOOTH).unwrap();
            let schema = aorta.registry.schema(DeviceKind::Sensor).clone();
            let id_idx = schema.index_of("id").unwrap();
            let accel_idx = schema.index_of("accel_x").unwrap();
            let mut detected = Vec::new();
            // Windows over the feed: a lone 300→900 step only reaches
            // avg 700 at the third 900 (not > 700), fires at the fourth;
            // the 0-stretch drains the window (re-arming the edge) and the
            // second sustained 900 run fires again.
            for accel in [300, 900, 900, 900, 900, 0, 0, 0, 900, 900, 900] {
                let mut values = vec![Value::Null; schema.len()];
                values[id_idx] = Value::Int(0);
                values[accel_idx] = Value::Int(accel);
                aorta.detect_on_batch(DeviceKind::Sensor, vec![Tuple::new(values)]);
                detected.push(aorta.stats().events_detected);
            }
            (detected, aorta.trace().render())
        };
        let (vec_detected, vec_trace) = run(EngineConfig::seeded(33));
        let (sca_detected, sca_trace) = run(EngineConfig::seeded(33).with_scalar_detect());
        assert_eq!(vec_detected, vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 2]);
        assert_eq!(vec_detected, sca_detected);
        assert_eq!(
            vec_trace, sca_trace,
            "detection modes must agree byte for byte"
        );
    }

    /// Pushdown is accounting-only: a run with the flag on is byte-identical
    /// to the baseline (same trace, same stats, same digest) while the
    /// pushdown counters show real suppression and byte savings.
    #[test]
    fn pushdown_accounting_never_perturbs_the_run() {
        let run = |config: EngineConfig| {
            let lab = PervasiveLab::standard()
                .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
            let mut aorta = Aorta::with_lab(config, lab);
            aorta.execute_sql(SNAPSHOT).unwrap();
            aorta.run_for(SimDuration::from_mins(3));
            aorta
        };
        let on = run(EngineConfig::seeded(34).with_pushdown());
        let off = run(EngineConfig::seeded(34));
        assert_eq!(on.trace().render(), off.trace().render());
        assert_eq!(on.stats(), off.stats());
        assert_eq!(on.state_digest(), off.state_digest());
        let push = on.pushdown_stats();
        assert_eq!(off.pushdown_stats(), crate::PushdownStats::default());
        assert!(
            push.suppressed_tuples > 0,
            "idle sensors below the threshold must be suppressed: {push:?}"
        );
        assert!(push.shipped_tuples > 0, "cameras always ship: {push:?}");
        assert!(
            push.wire_bytes() < push.baseline_bytes,
            "suppression must save wire bytes: {push:?}"
        );
        assert_eq!(
            push.saved_bytes(),
            push.baseline_bytes - push.reply_bytes - push.marker_bytes
        );
    }

    /// Rising-edge state must not outlive its query: before the GC, every
    /// register/deregister cycle leaked one entry per event source forever.
    #[test]
    fn dropping_a_query_garbage_collects_its_rising_edges() {
        let mut aorta = eventful_engine(23);
        aorta.run_for(SimDuration::from_secs(5));
        assert!(
            aorta.rising_edge_entries() > 0,
            "sampling tracks an edge per sensor"
        );
        aorta.execute_sql("DROP AQ snapshot").unwrap();
        assert_eq!(
            aorta.rising_edge_entries(),
            0,
            "the dropped query's edges must be collected"
        );
    }
}
