//! The engine catalog: registered actions, queries, and virtual tables.

use std::collections::BTreeMap;

use aorta_sql::validate::ValidationContext;

use crate::actions::ActionDef;
use crate::plan::AqPlan;
use crate::EngineError;

/// Scalar (non-action) builtin functions and their arities, available in
/// predicates: `coverage(camera_id, location)` and `distance(loc, loc)`.
pub(crate) const BUILTIN_FUNCTIONS: &[(&str, usize)] = &[("coverage", 2), ("distance", 2)];

/// The catalog of actions and registered continuous queries.
///
/// `Clone` supports crash-recovery snapshots: custom action handlers are
/// `Arc`-shared closures, so a cloned catalog shares handler code while
/// owning its query plans.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    actions: BTreeMap<String, ActionDef>,
    queries: BTreeMap<String, AqPlan>,
    next_query_id: u32,
}

impl Catalog {
    /// A catalog pre-loaded with the built-in actions (`photo`, `sendphoto`,
    /// `beep`).
    pub fn with_builtins() -> Self {
        let mut c = Catalog::default();
        for def in [
            ActionDef::builtin_photo(),
            ActionDef::builtin_sendphoto(),
            ActionDef::builtin_beep(),
        ] {
            c.actions.insert(def.name.clone(), def);
        }
        c
    }

    /// Registers an action (the `CREATE ACTION` path).
    ///
    /// # Errors
    ///
    /// [`EngineError::Catalog`] when the name is taken.
    pub fn register_action(&mut self, def: ActionDef) -> Result<(), EngineError> {
        if self.actions.contains_key(&def.name) {
            return Err(EngineError::Catalog(format!(
                "action '{}' already registered",
                def.name
            )));
        }
        self.actions.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks up an action.
    pub fn action(&self, name: &str) -> Option<&ActionDef> {
        self.actions.get(name)
    }

    /// All registered action names.
    pub fn action_names(&self) -> Vec<&str> {
        self.actions.keys().map(String::as_str).collect()
    }

    /// Registers a planned continuous query, assigning its query ID.
    ///
    /// # Errors
    ///
    /// [`EngineError::Catalog`] when the name is taken.
    pub fn register_query(&mut self, mut plan: AqPlan) -> Result<u32, EngineError> {
        if self.queries.contains_key(&plan.name) {
            return Err(EngineError::Catalog(format!(
                "query '{}' already registered",
                plan.name
            )));
        }
        let id = self.next_query_id;
        self.next_query_id += 1;
        plan.query_id = id;
        self.queries.insert(plan.name.clone(), plan);
        Ok(id)
    }

    /// Unregisters a query (the `DROP AQ` path).
    ///
    /// # Errors
    ///
    /// [`EngineError::Catalog`] when the query does not exist.
    pub fn drop_query(&mut self, name: &str) -> Result<AqPlan, EngineError> {
        self.queries
            .remove(name)
            .ok_or_else(|| EngineError::Catalog(format!("no registered query named '{name}'")))
    }

    /// Looks up a registered query by name.
    pub fn query(&self, name: &str) -> Option<&AqPlan> {
        self.queries.get(name)
    }

    /// All registered queries, in name order.
    pub fn queries(&self) -> impl Iterator<Item = &AqPlan> {
        self.queries.values()
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Builds the SQL validation context: the three virtual tables plus all
    /// registered actions and scalar builtins as functions.
    pub fn validation_context(&self) -> ValidationContext {
        let mut ctx = ValidationContext::new();
        for kind in aorta_device::DeviceKind::ALL {
            let catalog_xml = aorta_device::catalog_for(kind);
            let schema =
                aorta_device::parse_catalog(&catalog_xml).expect("built-in catalogs always parse");
            ctx = ctx.with_table(schema);
        }
        for (name, arity) in BUILTIN_FUNCTIONS {
            ctx = ctx.with_function(*name, *arity);
        }
        for def in self.actions.values() {
            ctx = ctx.with_function(def.name.clone(), def.arity());
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sql::parse;

    #[test]
    fn builtins_are_preloaded() {
        let c = Catalog::with_builtins();
        assert!(c.action("photo").is_some());
        assert!(c.action("sendphoto").is_some());
        assert!(c.action("beep").is_some());
        assert_eq!(c.action_names().len(), 3);
    }

    #[test]
    fn duplicate_action_rejected() {
        let mut c = Catalog::with_builtins();
        let err = c.register_action(ActionDef::builtin_photo()).unwrap_err();
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn query_ids_are_sequential() {
        let mut c = Catalog::with_builtins();
        let id0 = c.register_query(AqPlan::test_dummy("a")).unwrap();
        let id1 = c.register_query(AqPlan::test_dummy("b")).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(c.query_count(), 2);
        assert!(c.query("a").is_some());
        assert!(c.register_query(AqPlan::test_dummy("a")).is_err());
        assert_eq!(c.drop_query("a").unwrap().name, "a");
        assert!(c.drop_query("a").is_err());
        assert_eq!(c.query_count(), 1);
    }

    #[test]
    fn validation_context_accepts_the_paper_query() {
        let c = Catalog::with_builtins();
        let ctx = c.validation_context();
        let stmts = parse(
            r#"CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "d")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
        assert_eq!(ctx.validate(&stmts[0]), Ok(()));
    }

    #[test]
    fn validation_context_knows_user_actions() {
        let mut c = Catalog::with_builtins();
        let mut custom = ActionDef::builtin_beep();
        custom.name = "blink_twice".into();
        c.register_action(custom).unwrap();
        let ctx = c.validation_context();
        let stmts = parse("SELECT blink_twice(s.id) FROM sensor s WHERE s.light < 100").unwrap();
        assert_eq!(ctx.validate(&stmts[0]), Ok(()));
    }
}
