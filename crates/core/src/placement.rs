//! The operator-placement pass: in-network pushdown compilation.
//!
//! Every registered AQ's event conjuncts are walked in AND order and the
//! **maximal pushable prefix** is compiled into a device-side
//! [`PushProgram`] (see [`aorta_device::pushdown`]): indexable comparisons
//! (`attr <op> constant`, exactly the class the shared predicate index
//! interns) become [`PushTerm::Attr`] steps, windowed aggregate comparisons
//! become [`PushTerm::Window`] steps, and the first conjunct of any other
//! shape — scalar function calls, cross-attribute comparisons — stops the
//! prefix, because evaluating it needs the engine.
//!
//! Placement is *sound by construction*: a device suppresses a sample only
//! when every watching query's prefix evaluates false, and since each
//! prefix is a prefix of that query's short-circuit AND chain, the engine
//! itself would have rejected the sample on the same conjunct. Kinds that
//! serve as any query's action-target (device part) are never suppressible
//! — their tuples feed the candidate join of `fire_event`, which runs on
//! the engine.
//!
//! The pass is re-run on every `CREATE AQ` / `DROP AQ`, mirroring how the
//! predicate index tracks the catalog.

use std::collections::BTreeSet;

use aorta_device::pushdown::{PushOp, PushPrefix, PushProgram, PushStep, PushTerm};
use aorta_device::DeviceKind;
use aorta_net::DeviceRegistry;

use crate::catalog::Catalog;
use crate::expr::{extract_comparison, CmpOp};

fn push_op(op: CmpOp) -> PushOp {
    match op {
        CmpOp::Eq => PushOp::Eq,
        CmpOp::Ne => PushOp::Ne,
        CmpOp::Lt => PushOp::Lt,
        CmpOp::Le => PushOp::Le,
        CmpOp::Gt => PushOp::Gt,
        CmpOp::Ge => PushOp::Ge,
    }
}

/// Compiles the catalog's registered queries into per-kind pushdown
/// programs against the registry's current schemas.
pub(crate) fn build_program(catalog: &Catalog, registry: &DeviceRegistry) -> PushProgram {
    let mut program = PushProgram::default();
    let mut device_kinds: BTreeSet<DeviceKind> = BTreeSet::new();
    for plan in catalog.queries() {
        if let Some(d) = &plan.device {
            device_kinds.insert(d.kind);
        }
    }
    for plan in catalog.queries() {
        let schema = registry.schema(plan.event_kind);
        let mut steps = Vec::new();
        for (idx, conjunct) in plan.event_conjuncts.iter().enumerate() {
            if let Some(w) = plan.windowed.iter().find(|w| w.idx == idx) {
                steps.push(PushStep {
                    term: PushTerm::Window {
                        agg: w.agg,
                        attr: w.attr.clone(),
                        window: w.window,
                        slot: w.idx,
                    },
                    op: w.op,
                    constant: w.constant.clone(),
                });
            } else if let Some(cmp) = extract_comparison(conjunct, &plan.event_binding, schema) {
                steps.push(PushStep {
                    term: PushTerm::Attr(cmp.attr),
                    op: push_op(cmp.op),
                    constant: cmp.constant,
                });
            } else {
                break; // first non-pushable conjunct ends the prefix
            }
        }
        program
            .prefixes
            .entry(plan.event_kind)
            .or_default()
            .push(PushPrefix {
                query_id: plan.query_id,
                steps,
            });
    }
    program.suppressible = program
        .prefixes
        .keys()
        .copied()
        .filter(|k| !device_kinds.contains(k))
        .collect();
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AqPlan;
    use aorta_device::PervasiveLab;
    use aorta_sql::ast::Statement;

    fn registry() -> DeviceRegistry {
        DeviceRegistry::from_lab(PervasiveLab::standard())
    }

    fn catalog_with(queries: &[(&str, &str)]) -> Catalog {
        let mut catalog = Catalog::with_builtins();
        for (name, sql) in queries {
            let stmts = aorta_sql::parse(sql).unwrap();
            let Statement::Select(select) = stmts.into_iter().next().unwrap() else {
                panic!("expected SELECT");
            };
            let plan = AqPlan::plan(name, &select, &catalog).unwrap();
            catalog.register_query(plan).unwrap();
        }
        catalog
    }

    #[test]
    fn maximal_prefix_stops_at_the_first_non_pushable_conjunct() {
        let catalog = catalog_with(&[(
            "q",
            r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c
               WHERE s.accel_x > 500 AND distance(s.loc, s.loc) < 1.0 AND s.light > 10"#,
        )]);
        let program = build_program(&catalog, &registry());
        let prefixes = &program.prefixes[&DeviceKind::Sensor];
        assert_eq!(prefixes.len(), 1);
        // Only the leading indexable comparison is pushed: the distance()
        // call stops the prefix before s.light > 10.
        assert_eq!(prefixes[0].steps.len(), 1);
        assert!(matches!(&prefixes[0].steps[0].term, PushTerm::Attr(a) if a == "accel_x"));
    }

    #[test]
    fn windowed_comparisons_are_pushable() {
        let catalog = catalog_with(&[(
            "q",
            r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c
               WHERE s.accel_x > 100 AND AVG(s.accel_x) OVER LAST 5 > 400"#,
        )]);
        let program = build_program(&catalog, &registry());
        let steps = &program.prefixes[&DeviceKind::Sensor][0].steps;
        assert_eq!(steps.len(), 2);
        assert!(matches!(
            &steps[1].term,
            PushTerm::Window {
                window: 5,
                slot: 1,
                ..
            }
        ));
    }

    #[test]
    fn device_part_kinds_are_never_suppressible() {
        // beep() targets sensors, so the sensor table is both event source
        // and action target: its samples must always ship.
        let catalog = catalog_with(&[
            (
                "a",
                r#"SELECT beep(t.id) FROM sensor t, sensor s WHERE s.accel_x > 500"#,
            ),
            (
                "b",
                r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c
                   WHERE s.accel_x > 500"#,
            ),
        ]);
        let program = build_program(&catalog, &registry());
        assert!(!program.suppressible.contains(&DeviceKind::Sensor));
        // With only the camera query, sensors become suppressible (cameras,
        // the device part, do not).
        let catalog = catalog_with(&[(
            "b",
            r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c
               WHERE s.accel_x > 500"#,
        )]);
        let program = build_program(&catalog, &registry());
        assert!(program.suppressible.contains(&DeviceKind::Sensor));
        assert!(!program.suppressible.contains(&DeviceKind::Camera));
    }
}
