//! The cost model (§2.3).
//!
//! "The cost of an action is … estimated based on the action profile and the
//! estimated costs of the atomic operations on the type of devices."
//! Sequential composition adds, parallel composition takes the maximum, and
//! rated operations (head movement) consume travel units derived from the
//! device's *probed physical status* — which is why probing precedes costing
//! in device-selection optimization.

use aorta_device::{OpCostTable, PhysicalStatus, PtzPosition};
use aorta_sim::SimDuration;

use crate::actions::{ActionProfile, ProfileNode, UnitsSpec};

/// The execution context units are derived from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostContext {
    /// Camera head: current (probed) position.
    pub from: Option<PtzPosition>,
    /// Camera head: target position of this action.
    pub to: Option<PtzPosition>,
    /// Sensor depth in the multi-hop network.
    pub depth: Option<u8>,
}

impl CostContext {
    /// A context for a camera movement from `from` to `to`.
    pub fn camera(from: PtzPosition, to: PtzPosition) -> Self {
        CostContext {
            from: Some(from),
            to: Some(to),
            depth: None,
        }
    }

    /// A context built from a probed status (target filled in separately).
    pub fn from_status(status: &PhysicalStatus) -> Self {
        match status {
            PhysicalStatus::CameraHead(p) => CostContext {
                from: Some(*p),
                to: None,
                depth: None,
            },
            PhysicalStatus::SensorLink { depth, .. } => CostContext {
                from: None,
                to: None,
                depth: Some(*depth),
            },
            PhysicalStatus::PhoneCoverage { .. } | PhysicalStatus::RfidField { .. } => {
                CostContext::default()
            }
        }
    }

    /// Sets the camera target, builder style.
    pub fn with_target(mut self, to: PtzPosition) -> Self {
        self.to = Some(to);
        self
    }

    fn units(&self, spec: UnitsSpec) -> Result<f64, String> {
        match spec {
            UnitsSpec::One => Ok(1.0),
            UnitsSpec::PanDelta | UnitsSpec::TiltDelta | UnitsSpec::ZoomDelta => {
                let (from, to) = match (self.from, self.to) {
                    (Some(f), Some(t)) => (f, t),
                    _ => {
                        return Err(format!(
                            "units spec {spec:?} needs camera from/to positions in the cost context"
                        ))
                    }
                };
                let (dp, dt, dz) = from.axis_distances(&to);
                Ok(match spec {
                    UnitsSpec::PanDelta => dp,
                    UnitsSpec::TiltDelta => dt,
                    _ => dz,
                })
            }
            UnitsSpec::DepthHops => self
                .depth
                .map(f64::from)
                .ok_or_else(|| "units spec DepthHops needs a sensor depth".to_string()),
        }
    }
}

/// Estimates the cost of executing an action, composing atomic-operation
/// costs per the profile.
///
/// # Errors
///
/// Returns a message when the profile references an operation missing from
/// the cost table, or when the context lacks the status a units spec needs.
pub fn estimate_action_cost(
    profile: &ActionProfile,
    table: &OpCostTable,
    ctx: &CostContext,
) -> Result<SimDuration, String> {
    estimate_node(&profile.root, table, ctx)
}

fn estimate_node(
    node: &ProfileNode,
    table: &OpCostTable,
    ctx: &CostContext,
) -> Result<SimDuration, String> {
    match node {
        ProfileNode::Op { name, units } => {
            let cost = table.require(name)?;
            Ok(cost.evaluate(ctx.units(*units)?))
        }
        ProfileNode::Seq(children) => {
            let mut total = SimDuration::ZERO;
            for c in children {
                total += estimate_node(c, table, ctx)?;
            }
            Ok(total)
        }
        ProfileNode::Par(children) => {
            let mut max = SimDuration::ZERO;
            for c in children {
                max = max.max(estimate_node(c, table, ctx)?);
            }
            Ok(max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::ActionProfile;
    use aorta_device::{CameraSpec, DeviceKind, PhotoSize};

    fn camera_table() -> OpCostTable {
        OpCostTable::defaults_for(DeviceKind::Camera)
    }

    #[test]
    fn photo_estimate_matches_camera_kinematics() {
        let profile = ActionProfile::photo();
        let table = camera_table();
        let spec = CameraSpec::axis_2130();
        let from = PtzPosition::new(-20.0, 5.0, 0.1);
        let to = PtzPosition::new(120.0, -40.0, 0.8);
        let est = estimate_action_cost(&profile, &table, &CostContext::camera(from, to)).unwrap();
        let truth = spec.photo_time(&from, &to, PhotoSize::Medium);
        let diff = est.max(truth) - est.min(truth);
        assert!(
            diff <= SimDuration::from_micros(3),
            "estimate {est} vs ground truth {truth}"
        );
    }

    #[test]
    fn zero_movement_is_capture_only() {
        let est = estimate_action_cost(
            &ActionProfile::photo(),
            &camera_table(),
            &CostContext::camera(PtzPosition::HOME, PtzPosition::HOME),
        )
        .unwrap();
        assert_eq!(
            est,
            SimDuration::from_millis(360),
            "the paper's 0.36s floor"
        );
    }

    #[test]
    fn par_takes_max_seq_takes_sum() {
        let table = camera_table();
        // Pure pan (5s full travel) dominates tilt (1s of travel).
        let ctx = CostContext::camera(
            PtzPosition::new(-170.0, 0.0, 0.0),
            PtzPosition::new(170.0, 20.0, 0.0),
        );
        let par = ProfileNode::Par(vec![
            ProfileNode::Op {
                name: "move_head_pan".into(),
                units: UnitsSpec::PanDelta,
            },
            ProfileNode::Op {
                name: "move_head_tilt".into(),
                units: UnitsSpec::TiltDelta,
            },
        ]);
        let profile = ActionProfile {
            kind: DeviceKind::Camera,
            root: par.clone(),
        };
        let par_cost = estimate_action_cost(&profile, &table, &ctx).unwrap();
        // Per-unit table entries are rounded to whole microseconds, so allow
        // sub-millisecond slack against the exact 5 s kinematic value.
        assert!(
            (par_cost.as_secs_f64() - 5.0).abs() < 0.001,
            "par cost {par_cost}"
        );
        let seq_profile = ActionProfile {
            kind: DeviceKind::Camera,
            root: ProfileNode::Seq(vec![par.clone(), par]),
        };
        let seq_cost = estimate_action_cost(&seq_profile, &table, &ctx).unwrap();
        assert!(
            (seq_cost.as_secs_f64() - 10.0).abs() < 0.001,
            "seq cost {seq_cost}"
        );
    }

    #[test]
    fn sendphoto_estimate_is_connect_plus_mms() {
        let est = estimate_action_cost(
            &ActionProfile::sendphoto(),
            &OpCostTable::defaults_for(DeviceKind::Phone),
            &CostContext::default(),
        )
        .unwrap();
        assert_eq!(
            est,
            SimDuration::from_millis(1500) + SimDuration::from_secs(4)
        );
    }

    #[test]
    fn beep_cost_scales_with_depth() {
        let table = OpCostTable::defaults_for(DeviceKind::Sensor);
        let shallow = estimate_action_cost(
            &ActionProfile::beep(),
            &table,
            &CostContext {
                depth: Some(1),
                ..CostContext::default()
            },
        )
        .unwrap();
        let deep = estimate_action_cost(
            &ActionProfile::beep(),
            &table,
            &CostContext {
                depth: Some(4),
                ..CostContext::default()
            },
        )
        .unwrap();
        assert!(deep > shallow, "{shallow} vs {deep}");
    }

    #[test]
    fn missing_context_and_ops_are_errors() {
        let err = estimate_action_cost(
            &ActionProfile::photo(),
            &camera_table(),
            &CostContext::default(),
        )
        .unwrap_err();
        assert!(err.contains("cost context"), "{err}");

        let err = estimate_action_cost(
            &ActionProfile::photo(),
            &OpCostTable::new(DeviceKind::Camera),
            &CostContext::camera(PtzPosition::HOME, PtzPosition::HOME),
        )
        .unwrap_err();
        assert!(err.contains("no atomic operation"), "{err}");
    }

    #[test]
    fn status_to_context() {
        let cam = CostContext::from_status(&PhysicalStatus::CameraHead(PtzPosition::HOME))
            .with_target(PtzPosition::new(10.0, 0.0, 0.0));
        assert_eq!(cam.from, Some(PtzPosition::HOME));
        assert!(cam.to.is_some());
        let sensor = CostContext::from_status(&PhysicalStatus::SensorLink {
            depth: 3,
            battery_volts: 3.0,
        });
        assert_eq!(sensor.depth, Some(3));
    }
}
