//! Expression evaluation over bound tuples.

use std::cmp::Ordering;

use aorta_data::{Schema, Tuple, Value};
use aorta_net::DeviceRegistry;
use aorta_sql::ast::{BinOp, Expr, UnOp};

use crate::EngineError;

/// Read-only engine state scalar builtins may consult.
pub struct EvalContext<'a> {
    /// The device registry (for `coverage()`).
    pub registry: &'a DeviceRegistry,
}

/// A set of table bindings: binding name → (schema, current tuple).
#[derive(Debug, Default)]
pub struct Env<'a> {
    bindings: Vec<(&'a str, &'a Schema, &'a Tuple)>,
}

impl<'a> Env<'a> {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Adds a binding, builder style.
    pub fn bind(mut self, name: &'a str, schema: &'a Schema, tuple: &'a Tuple) -> Self {
        self.bindings.push((name, schema, tuple));
        self
    }

    fn lookup(&self, qualifier: Option<&str>, name: &str) -> Result<Value, EngineError> {
        match qualifier {
            Some(q) => {
                let (_, schema, tuple) = self
                    .bindings
                    .iter()
                    .find(|(b, _, _)| *b == q)
                    .ok_or_else(|| EngineError::Eval(format!("unbound table '{q}'")))?;
                let idx = schema.index_of(name).ok_or_else(|| {
                    EngineError::Eval(format!("table '{q}' has no attribute '{name}'"))
                })?;
                Ok(tuple.get(idx).cloned().unwrap_or(Value::Null))
            }
            None => {
                for (_, schema, tuple) in &self.bindings {
                    if let Some(idx) = schema.index_of(name) {
                        return Ok(tuple.get(idx).cloned().unwrap_or(Value::Null));
                    }
                }
                Err(EngineError::Eval(format!("unknown attribute '{name}'")))
            }
        }
    }
}

/// Evaluates an expression to a value.
///
/// SQL three-valued logic is approximated conservatively: any comparison or
/// arithmetic with a NULL operand yields NULL, and a NULL predicate is
/// treated as *not satisfied* by callers.
///
/// # Errors
///
/// [`EngineError::Eval`] on unbound names, type mismatches, unknown
/// functions, or division by zero.
pub fn eval_expr(expr: &Expr, env: &Env<'_>, ctx: &EvalContext<'_>) -> Result<Value, EngineError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => env.lookup(qualifier.as_deref(), name),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, env, ctx)?;
            match (op, v) {
                (_, Value::Null) => Ok(Value::Null),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                (op, v) => Err(EngineError::Eval(format!("cannot apply {op:?} to {v}"))),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(lhs, env, ctx)?;
            // Short-circuit logic (also gives NULL-safe AND/OR).
            match op {
                BinOp::And => {
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_expr(rhs, env, ctx)?;
                    return logic_and(l, r);
                }
                BinOp::Or => {
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_expr(rhs, env, ctx)?;
                    return logic_or(l, r);
                }
                _ => {}
            }
            let r = eval_expr(rhs, env, ctx)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let ord = l
                        .compare(&r)
                        .map_err(|e| EngineError::Eval(e.to_string()))?;
                    let b = match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(b))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, l, r),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Call { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_expr(a, env, ctx)?);
            }
            call_builtin(name, &values, ctx)
        }
        // Window aggregates need per-(query, source) sample history, which
        // only the continuous-detection path carries. The planner routes
        // every windowed conjunct to that path (see `AqPlan::plan`), so
        // reaching this arm means a one-shot SELECT (or a projection) tried
        // to use one as a scalar.
        Expr::WindowAgg { func, .. } => Err(EngineError::Eval(format!(
            "{func} OVER LAST is only supported in continuous-query predicates (CREATE AQ)"
        ))),
    }
}

fn logic_and(l: Value, r: Value) -> Result<Value, EngineError> {
    match (l.as_bool(), r.as_bool(), l.is_null() || r.is_null()) {
        (Some(a), Some(b), _) => Ok(Value::Bool(a && b)),
        (_, Some(false), _) | (Some(false), _, _) => Ok(Value::Bool(false)),
        (_, _, true) => Ok(Value::Null),
        _ => Err(EngineError::Eval("AND expects boolean operands".into())),
    }
}

fn logic_or(l: Value, r: Value) -> Result<Value, EngineError> {
    match (l.as_bool(), r.as_bool(), l.is_null() || r.is_null()) {
        (Some(a), Some(b), _) => Ok(Value::Bool(a || b)),
        (_, Some(true), _) | (Some(true), _, _) => Ok(Value::Bool(true)),
        (_, _, true) => Ok(Value::Null),
        _ => Err(EngineError::Eval("OR expects boolean operands".into())),
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    // Integer arithmetic when both sides are integers; float otherwise.
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        return match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
            BinOp::Div => {
                if b == 0 {
                    Err(EngineError::Eval("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EngineError::Eval(format!(
                "cannot apply {op} to non-numeric operands"
            )))
        }
    };
    match op {
        BinOp::Add => Ok(Value::Float(a + b)),
        BinOp::Sub => Ok(Value::Float(a - b)),
        BinOp::Mul => Ok(Value::Float(a * b)),
        BinOp::Div => {
            if b == 0.0 {
                Err(EngineError::Eval("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        _ => unreachable!(),
    }
}

/// Scalar builtins: `coverage(camera_id, location)` (the paper's Boolean
/// coverage test) and `distance(location, location)`.
fn call_builtin(name: &str, args: &[Value], ctx: &EvalContext<'_>) -> Result<Value, EngineError> {
    match name {
        "coverage" => {
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let id = args[0]
                .as_i64()
                .ok_or_else(|| EngineError::Eval("coverage() expects a camera id".into()))?;
            let loc = args[1]
                .as_location()
                .ok_or_else(|| EngineError::Eval("coverage() expects a location".into()))?;
            let covered = ctx
                .registry
                .camera(aorta_device::DeviceId::camera(id as u32))
                .is_some_and(|c| c.covers(loc));
            Ok(Value::Bool(covered))
        }
        "distance" => {
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let a = args[0]
                .as_location()
                .ok_or_else(|| EngineError::Eval("distance() expects locations".into()))?;
            let b = args[1]
                .as_location()
                .ok_or_else(|| EngineError::Eval("distance() expects locations".into()))?;
            Ok(Value::Float(a.distance(b)))
        }
        other => Err(EngineError::Eval(format!(
            "unknown scalar function '{other}' (actions are not evaluated as scalars)"
        ))),
    }
}

/// A comparison operator in an indexable `<attr> <op> <constant>` conjunct.
///
/// Mirrors the comparison subset of [`aorta_sql::ast::BinOp`]; the predicate
/// index stores these instead of whole expressions so distinct queries with
/// the same threshold share one evaluation per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether an ordering between the column value and the constant
    /// satisfies this operator. The table mirrors [`eval_expr`]'s comparison
    /// arm exactly — the vectorized path must agree with the scalar oracle
    /// bit for bit.
    pub(crate) fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    fn from_binop(op: BinOp) -> Option<CmpOp> {
        match op {
            BinOp::Eq => Some(CmpOp::Eq),
            BinOp::Ne => Some(CmpOp::Ne),
            BinOp::Lt => Some(CmpOp::Lt),
            BinOp::Le => Some(CmpOp::Le),
            BinOp::Gt => Some(CmpOp::Gt),
            BinOp::Ge => Some(CmpOp::Ge),
            _ => None,
        }
    }

    /// The operator with its operands swapped: `500 < s.accel_x` is the same
    /// predicate as `s.accel_x > 500`. `Value::compare` errors are symmetric
    /// in their operands, so flipping preserves error behaviour too.
    fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// An event-attribute-vs-constant comparison extracted from a WHERE-clause
/// conjunct, normalized so the column is always on the left.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VectorizableCmp {
    /// Attribute name in the event table's schema.
    pub attr: String,
    /// Normalized comparison operator.
    pub op: CmpOp,
    /// The constant operand (`Bool`, `Int`, `Float` or `Str`).
    pub constant: Value,
}

/// Decomposes a conjunct into a comparison the predicate index can evaluate
/// in batch, or `None` when the conjunct needs the scalar fallback.
///
/// Indexable shape: `Column <cmp> Literal` (or flipped), where the column is
/// unqualified or qualified by the event binding, the attribute exists in
/// the event schema, and the literal is a comparable constant. Everything
/// else — calls, arithmetic, OR-trees, column-vs-column, unknown bindings or
/// attributes (which must keep erroring per tuple), NULL or location
/// literals — stays on the scalar path.
pub(crate) fn extract_comparison(
    conjunct: &Expr,
    event_binding: &str,
    schema: &Schema,
) -> Option<VectorizableCmp> {
    let Expr::Binary { op, lhs, rhs } = conjunct else {
        return None;
    };
    let op = CmpOp::from_binop(*op)?;
    let (column, constant, op) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column { qualifier, name }, Expr::Literal(v)) => ((qualifier, name), v, op),
        (Expr::Literal(v), Expr::Column { qualifier, name }) => {
            ((qualifier, name), v, op.flipped())
        }
        _ => return None,
    };
    let (qualifier, name) = column;
    if qualifier.as_deref().is_some_and(|q| q != event_binding) {
        return None;
    }
    schema.index_of(name)?;
    if !matches!(
        constant,
        Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_)
    ) {
        return None;
    }
    Some(VectorizableCmp {
        attr: name.clone(),
        op,
        constant: constant.clone(),
    })
}

/// Convenience: evaluate a predicate; NULL counts as not satisfied.
pub(crate) fn eval_predicate(
    expr: &Expr,
    env: &Env<'_>,
    ctx: &EvalContext<'_>,
) -> Result<bool, EngineError> {
    match eval_expr(expr, env, ctx)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(EngineError::Eval(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_data::{AttrKind, Location, ValueType};
    use aorta_device::PervasiveLab;
    use aorta_sql::ast::Statement;
    use aorta_sql::parse;

    fn sensor_schema() -> Schema {
        Schema::builder("sensor")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("loc", ValueType::Location, AttrKind::NonSensory)
            .attr("accel_x", ValueType::Int, AttrKind::Sensory)
            .build()
    }

    fn predicate_of(sql: &str) -> Expr {
        let stmts = parse(sql).unwrap();
        match stmts.into_iter().next().unwrap() {
            Statement::Select(s) => s.predicate.unwrap(),
            _ => panic!("expected SELECT"),
        }
    }

    fn registry() -> DeviceRegistry {
        DeviceRegistry::from_lab(PervasiveLab::standard())
    }

    #[test]
    fn threshold_predicate_fires_on_spike() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let schema = sensor_schema();
        let pred = predicate_of("SELECT id FROM sensor s WHERE s.accel_x > 500");
        let quiet = Tuple::new(vec![
            Value::Int(0),
            Value::Location(Location::ORIGIN),
            Value::Int(12),
        ]);
        let spike = Tuple::new(vec![
            Value::Int(0),
            Value::Location(Location::ORIGIN),
            Value::Int(612),
        ]);
        let env = Env::new().bind("s", &schema, &quiet);
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(false));
        let env = Env::new().bind("s", &schema, &spike);
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(true));
    }

    #[test]
    fn null_sensory_value_does_not_fire() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let schema = sensor_schema();
        let pred = predicate_of("SELECT id FROM sensor s WHERE s.accel_x > 500");
        let lost = Tuple::new(vec![Value::Int(0), Value::Null, Value::Null]);
        let env = Env::new().bind("s", &schema, &lost);
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(false));
    }

    #[test]
    fn coverage_builtin_consults_cameras() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        // Mote 0's location is covered in the standard lab.
        let mote_loc = reg
            .get(aorta_device::DeviceId::sensor(0))
            .unwrap()
            .sim
            .location()
            .unwrap();
        let covered = call_builtin(
            "coverage",
            &[Value::Int(0), Value::Location(mote_loc)],
            &ctx,
        )
        .unwrap();
        assert_eq!(covered, Value::Bool(true));
        // A location far outside the lab is not.
        let far = call_builtin(
            "coverage",
            &[
                Value::Int(0),
                Value::Location(Location::new(500.0, 0.0, 0.0)),
            ],
            &ctx,
        )
        .unwrap();
        assert_eq!(far, Value::Bool(false));
        // Unknown camera id → false, not an error.
        let unknown = call_builtin(
            "coverage",
            &[Value::Int(99), Value::Location(mote_loc)],
            &ctx,
        )
        .unwrap();
        assert_eq!(unknown, Value::Bool(false));
    }

    #[test]
    fn distance_builtin() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let d = call_builtin(
            "distance",
            &[
                Value::Location(Location::new(0.0, 0.0, 0.0)),
                Value::Location(Location::new(3.0, 4.0, 0.0)),
            ],
            &ctx,
        )
        .unwrap();
        assert_eq!(d, Value::Float(5.0));
    }

    #[test]
    fn arithmetic_and_precedence() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let schema = sensor_schema();
        let t = Tuple::new(vec![
            Value::Int(2),
            Value::Location(Location::ORIGIN),
            Value::Int(100),
        ]);
        let env = Env::new().bind("s", &schema, &t);
        let pred = predicate_of("SELECT id FROM sensor s WHERE s.accel_x = 10 * s.id + 80");
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(true));
        let float_pred = predicate_of("SELECT id FROM sensor s WHERE s.accel_x / 8.0 = 12.5");
        assert_eq!(eval_predicate(&float_pred, &env, &ctx), Ok(true));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let env = Env::new();
        let pred = predicate_of("SELECT x FROM t WHERE 1 / 0 = 1");
        assert!(matches!(
            eval_predicate(&pred, &env, &ctx),
            Err(EngineError::Eval(_))
        ));
    }

    #[test]
    fn logic_short_circuits_avoid_rhs_errors() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let env = Env::new();
        // FALSE AND <error> → false.
        let pred = predicate_of("SELECT x FROM t WHERE FALSE AND nosuch > 1");
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(false));
        // TRUE OR <error> → true.
        let pred = predicate_of("SELECT x FROM t WHERE TRUE OR nosuch > 1");
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(true));
    }

    #[test]
    fn not_and_negation() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let env = Env::new();
        let pred = predicate_of("SELECT x FROM t WHERE NOT FALSE");
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(true));
        let pred = predicate_of("SELECT x FROM t WHERE -3 < -2");
        assert_eq!(eval_predicate(&pred, &env, &ctx), Ok(true));
    }

    #[test]
    fn extraction_accepts_normalized_and_flipped_comparisons() {
        let schema = sensor_schema();
        let pred = predicate_of("SELECT x FROM sensor s WHERE s.accel_x > 500");
        let cmp = extract_comparison(&pred, "s", &schema).unwrap();
        assert_eq!(cmp.attr, "accel_x");
        assert_eq!(cmp.op, CmpOp::Gt);
        assert_eq!(cmp.constant, Value::Int(500));
        // Flipped operands normalize: `500 >= s.accel_x` ⇔ `s.accel_x <= 500`.
        let pred = predicate_of("SELECT x FROM sensor s WHERE 500 >= s.accel_x");
        let cmp = extract_comparison(&pred, "s", &schema).unwrap();
        assert_eq!(cmp.op, CmpOp::Le);
        // Unqualified columns bind to the event table by planner convention.
        let pred = predicate_of("SELECT x FROM sensor s WHERE accel_x = 7");
        assert!(extract_comparison(&pred, "s", &schema).is_some());
    }

    #[test]
    fn extraction_rejects_non_indexable_conjuncts() {
        let schema = sensor_schema();
        for sql in [
            // Arithmetic, calls, OR-trees and column-vs-column need eval.
            "SELECT x FROM sensor s WHERE s.accel_x + 1 > 500",
            "SELECT x FROM sensor s WHERE coverage(s.id, s.loc)",
            "SELECT x FROM sensor s WHERE s.accel_x > 500 OR s.id = 1",
            "SELECT x FROM sensor s WHERE s.accel_x > s.id",
            // Wrong binding / unknown attribute must keep erroring per tuple.
            "SELECT x FROM sensor s WHERE c.accel_x > 500",
            "SELECT x FROM sensor s WHERE s.nosuch > 500",
            // Bare boolean literal is not a comparison.
            "SELECT x FROM sensor s WHERE TRUE",
        ] {
            let pred = predicate_of(sql);
            assert!(
                extract_comparison(&pred, "s", &schema).is_none(),
                "{sql} should not be indexable"
            );
        }
    }

    #[test]
    fn cmp_op_matches_mirrors_eval_expr() {
        use Ordering::*;
        let table = [
            (CmpOp::Eq, [false, true, false]),
            (CmpOp::Ne, [true, false, true]),
            (CmpOp::Lt, [true, false, false]),
            (CmpOp::Le, [true, true, false]),
            (CmpOp::Gt, [false, false, true]),
            (CmpOp::Ge, [false, true, true]),
        ];
        for (op, expect) in table {
            for (ord, want) in [Less, Equal, Greater].into_iter().zip(expect) {
                assert_eq!(op.matches(ord), want, "{op:?} {ord:?}");
            }
        }
    }

    #[test]
    fn unbound_names_are_errors() {
        let reg = registry();
        let ctx = EvalContext { registry: &reg };
        let env = Env::new();
        let pred = predicate_of("SELECT x FROM t WHERE z.a > 1");
        let err = eval_predicate(&pred, &env, &ctx).unwrap_err();
        assert!(err.to_string().contains("unbound table"), "{err}");
    }
}
