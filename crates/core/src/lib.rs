//! # aorta-core — the action-oriented query processing engine
//!
//! The middle layer of the Aorta architecture (§2.1): it parses and
//! registers action-embedded continuous queries, generates plans with
//! **actions as first-class operators**, shares action operators among
//! concurrent queries, performs cost-based device-selection optimization
//! (probe → estimate → pick cheapest), enforces device synchronization
//! (locking + probing, §4), and schedules multi-request action workloads
//! through `aorta-sched` (§5).
//!
//! The facade is [`Aorta`]:
//!
//! ```
//! use aorta_core::{Aorta, EngineConfig};
//! use aorta_device::PervasiveLab;
//! use aorta_sim::SimDuration;
//!
//! // Ten motes spiking once per minute (the §6.2 workload).
//! let lab = PervasiveLab::standard()
//!     .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
//! let mut aorta = Aorta::with_lab(EngineConfig::default(), lab);
//! aorta.execute_sql(
//!     r#"CREATE AQ snapshot AS
//!        SELECT photo(c.ip, s.loc, "photos/admin")
//!        FROM sensor s, camera c
//!        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
//! )?;
//! aorta.run_for(SimDuration::from_mins(2));
//! let stats = aorta.stats();
//! assert!(stats.requests > 0);
//! # Ok::<(), aorta_core::EngineError>(())
//! ```

#![warn(missing_docs)]

mod actions;
mod admission;
mod catalog;
mod config;
mod cost;
mod engine;
mod error;
mod exec;
mod expr;
mod lock;
mod pindex;
mod placement;
mod plan;
mod recovery;
mod shared;

pub use actions::{ActionDef, ActionHandler, ActionProfile, CustomHandler, ProfileNode, UnitsSpec};
pub use catalog::Catalog;
pub use config::{AdmissionConfig, DispatchPolicy, EngineConfig};
pub use cost::{estimate_action_cost, CostContext};
pub use engine::{Aorta, ExecOutput};
pub use error::EngineError;
pub use exec::{EngineStats, PushdownStats};
pub use expr::{eval_expr, Env, EvalContext};
pub use lock::LockManager;
pub use pindex::PredicateIndex;
pub use plan::{ActionCallPlan, AqPlan, DevicePart, WindowedCmp};
pub use recovery::{
    genesis_fingerprint, recover_engine, recover_from_log, request_from_wire, restore_from_image,
    wire_from_request, GenesisSpec, Recovered,
};
pub use shared::{ActionRequest, SharedActionOperator};
