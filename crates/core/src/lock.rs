//! Device locking (§4).
//!
//! "When a device has been selected to execute an action, the optimizer will
//! lock it until it finishes executing the action … Subsequent actions on
//! this device cannot start before the device is unlocked."
//!
//! Locks live engine-side (the optimizer holds them, not the devices) and
//! are time-scoped on the virtual clock: a lock taken for an action covers
//! the interval up to the action's completion.

use std::collections::BTreeMap;

use aorta_device::DeviceId;
use aorta_sim::SimTime;

/// One held lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lock {
    holder_query: u32,
    until: SimTime,
}

/// The engine's device lock manager.
///
/// # Example
///
/// ```
/// use aorta_core::LockManager;
/// use aorta_device::DeviceId;
/// use aorta_sim::SimTime;
///
/// let mut locks = LockManager::new();
/// let cam = DeviceId::camera(0);
/// assert!(locks.try_lock(cam, 1, SimTime::ZERO, SimTime::from_micros(100)));
/// assert!(!locks.try_lock(cam, 2, SimTime::from_micros(50), SimTime::from_micros(200)));
/// assert!(locks.try_lock(cam, 2, SimTime::from_micros(150), SimTime::from_micros(200)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    locks: BTreeMap<DeviceId, Lock>,
    acquisitions: u64,
    conflicts: u64,
}

impl LockManager {
    /// A manager with no locks held.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// True when the device is locked at instant `now`.
    pub fn is_locked(&self, device: DeviceId, now: SimTime) -> bool {
        self.locks.get(&device).is_some_and(|l| now < l.until)
    }

    /// The instant the current lock (if any) expires.
    pub fn locked_until(&self, device: DeviceId, now: SimTime) -> Option<SimTime> {
        self.locks
            .get(&device)
            .filter(|l| now < l.until)
            .map(|l| l.until)
    }

    /// The query currently holding the device.
    pub fn holder(&self, device: DeviceId, now: SimTime) -> Option<u32> {
        self.locks
            .get(&device)
            .filter(|l| now < l.until)
            .map(|l| l.holder_query)
    }

    /// Attempts to lock `device` for `query` from `now` until `until`.
    ///
    /// Fails (returns `false`) when another lock is still active at `now`.
    /// Expired locks are reclaimed implicitly.
    pub fn try_lock(&mut self, device: DeviceId, query: u32, now: SimTime, until: SimTime) -> bool {
        if self.is_locked(device, now) {
            self.conflicts += 1;
            return false;
        }
        self.locks.insert(
            device,
            Lock {
                holder_query: query,
                until,
            },
        );
        self.acquisitions += 1;
        true
    }

    /// Extends the current lock's expiry (e.g. when the actual action ran
    /// longer than estimated).
    ///
    /// Returns `false` when the device holds no active lock at `now`.
    pub fn extend(&mut self, device: DeviceId, now: SimTime, until: SimTime) -> bool {
        match self.locks.get_mut(&device) {
            Some(l) if now < l.until => {
                l.until = l.until.max(until);
                true
            }
            _ => false,
        }
    }

    /// Releases the lock explicitly (early completion).
    pub fn unlock(&mut self, device: DeviceId) {
        self.locks.remove(&device);
    }

    /// Drops all expired locks (housekeeping; correctness never needs it).
    pub fn sweep(&mut self, now: SimTime) {
        self.locks.retain(|_, l| now < l.until);
    }

    /// Number of devices with an entry (possibly expired until swept).
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total failed attempts due to an active lock.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn lock_blocks_until_expiry() {
        let mut m = LockManager::new();
        let d = DeviceId::camera(0);
        assert!(m.try_lock(d, 1, t(0), t(100)));
        assert!(m.is_locked(d, t(50)));
        assert_eq!(m.holder(d, t(50)), Some(1));
        assert_eq!(m.locked_until(d, t(50)), Some(t(100)));
        assert!(!m.try_lock(d, 2, t(99), t(300)));
        assert_eq!(m.conflicts(), 1);
        // At expiry the lock is free.
        assert!(!m.is_locked(d, t(100)));
        assert!(m.try_lock(d, 2, t(100), t(200)));
        assert_eq!(m.acquisitions(), 2);
    }

    #[test]
    fn independent_devices_do_not_interfere() {
        let mut m = LockManager::new();
        assert!(m.try_lock(DeviceId::camera(0), 1, t(0), t(100)));
        assert!(m.try_lock(DeviceId::camera(1), 2, t(0), t(100)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn explicit_unlock_frees_early() {
        let mut m = LockManager::new();
        let d = DeviceId::phone(0);
        m.try_lock(d, 1, t(0), t(1_000));
        m.unlock(d);
        assert!(!m.is_locked(d, t(10)));
        assert!(m.try_lock(d, 2, t(10), t(20)));
    }

    #[test]
    fn extend_pushes_expiry_out() {
        let mut m = LockManager::new();
        let d = DeviceId::camera(0);
        m.try_lock(d, 1, t(0), t(100));
        assert!(m.extend(d, t(50), t(500)));
        assert!(m.is_locked(d, t(400)));
        // Extending backwards never shortens.
        assert!(m.extend(d, t(60), t(200)));
        assert_eq!(m.locked_until(d, t(60)), Some(t(500)));
        // Extending an expired lock fails.
        assert!(!m.extend(d, t(600), t(700)));
    }

    #[test]
    fn sweep_removes_expired_only() {
        let mut m = LockManager::new();
        m.try_lock(DeviceId::camera(0), 1, t(0), t(100));
        m.try_lock(DeviceId::camera(1), 1, t(0), t(1_000));
        m.sweep(t(500));
        assert_eq!(m.len(), 1);
        assert!(m.is_locked(DeviceId::camera(1), t(500)));
        assert!(!m.is_empty());
    }
}
