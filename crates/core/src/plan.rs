//! Query planning: actions as first-class operators (§2.3).
//!
//! An action-embedded query like the paper's snapshot query has three
//! plannable parts:
//!
//! * an **event part** — the sensor-table scan plus the conjuncts that only
//!   touch it (`s.accel_x > 500`): evaluated every sampling epoch to detect
//!   events,
//! * an optional **device part** — the action-target table plus the
//!   conjuncts involving it (`coverage(c.id, s.loc)`): evaluated per event
//!   to compute the candidate device set,
//! * the **action operators** — the action calls in the projection, with
//!   their argument expressions.

use std::fmt;

use aorta_data::{Value, ValueType};
use aorta_device::pushdown::{PushAgg, PushOp};
use aorta_device::DeviceKind;
use aorta_sql::ast::{AggFunc, BinOp, Expr, Select};

use crate::catalog::Catalog;
use crate::EngineError;

/// The device (action-target) part of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePart {
    /// Binding name of the device table (`c`).
    pub binding: String,
    /// The device kind (from the table name).
    pub kind: DeviceKind,
    /// Conjuncts that involve the device binding (pure-device and
    /// cross-binding ones alike); a candidate must satisfy all of them.
    pub conjuncts: Vec<Expr>,
}

/// One windowed-aggregate comparison among a plan's event conjuncts:
/// `AGG(attr) OVER LAST n <op> constant` at conjunct index `idx`.
///
/// The planner only admits window aggregates in this shape (and only over
/// the event table), so detection can evaluate them from the device-resident
/// [`aorta_device::pushdown::WindowBank`] and the placement pass can push
/// them whole.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCmp {
    /// Index into [`AqPlan::event_conjuncts`].
    pub idx: usize,
    /// The aggregate function.
    pub agg: PushAgg,
    /// The aggregated event-table attribute.
    pub attr: String,
    /// Window length in samples.
    pub window: u32,
    /// Comparison operator, normalized so the aggregate is the left operand.
    pub op: PushOp,
    /// The literal the aggregate is compared against.
    pub constant: Value,
}

/// One action operator in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionCallPlan {
    /// The registered action's name.
    pub action: String,
    /// Argument expressions (may reference both event and device bindings).
    pub args: Vec<Expr>,
}

/// A planned action-embedded continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct AqPlan {
    /// Engine-assigned query ID (tags tuples into shared action operators).
    pub query_id: u32,
    /// The query's registered name.
    pub name: String,
    /// Binding name of the event table (`s`).
    pub event_binding: String,
    /// The event table's device kind.
    pub event_kind: DeviceKind,
    /// Conjuncts involving only the event binding.
    pub event_conjuncts: Vec<Expr>,
    /// The windowed-aggregate comparisons among `event_conjuncts`, in
    /// ascending `idx` order. Empty for plans without window clauses —
    /// those run through the shared predicate index unchanged.
    pub windowed: Vec<WindowedCmp>,
    /// The action-target part, when the query embeds actions.
    pub device: Option<DevicePart>,
    /// The action operators.
    pub actions: Vec<ActionCallPlan>,
}

impl AqPlan {
    /// Builds a plan from a validated SELECT.
    ///
    /// # Errors
    ///
    /// [`EngineError::Planning`] when the query shape is outside the
    /// supported class: it must have exactly one event table, at most one
    /// device table (determined by the embedded actions' device kind), and
    /// every projection must be an action call registered in the catalog.
    pub fn plan(name: &str, select: &Select, catalog: &Catalog) -> Result<AqPlan, EngineError> {
        // Identify the action calls among the projections.
        let mut actions = Vec::new();
        for p in &select.projections {
            match p {
                Expr::Call { name, args } if catalog.action(name).is_some() => {
                    actions.push(ActionCallPlan {
                        action: name.clone(),
                        args: args.clone(),
                    });
                }
                other => {
                    return Err(EngineError::Planning(format!(
                        "projection '{other}' is not a registered action \
                         (continuous queries must project action calls)"
                    )))
                }
            }
        }
        if actions.is_empty() {
            return Err(EngineError::Planning(
                "an action-embedded query needs at least one action".into(),
            ));
        }
        // All actions must target the same device kind — they share the
        // device part.
        let kinds: Vec<DeviceKind> = actions
            .iter()
            .map(|a| catalog.action(&a.action).expect("checked above").kind())
            .collect();
        let action_kind = kinds[0];
        if kinds.iter().any(|&k| k != action_kind) {
            return Err(EngineError::Planning(
                "all actions in one query must target the same device kind".into(),
            ));
        }

        // Partition the FROM clause into the device table and event tables.
        let mut device_binding: Option<(String, DeviceKind)> = None;
        let mut event_binding: Option<(String, DeviceKind)> = None;
        for t in &select.tables {
            let kind: DeviceKind = t.table.parse().map_err(|e: String| {
                EngineError::Planning(format!("FROM references a non-device table: {e}"))
            })?;
            if kind == action_kind && device_binding.is_none() {
                device_binding = Some((t.binding().to_string(), kind));
            } else if event_binding.is_none() {
                event_binding = Some((t.binding().to_string(), kind));
            } else {
                return Err(EngineError::Planning(format!(
                    "unsupported query shape: more than one event table ('{}')",
                    t.binding()
                )));
            }
        }
        let (event_binding, event_kind) = event_binding.ok_or_else(|| {
            EngineError::Planning(
                "query has no event table (the action-target table cannot drive events)".into(),
            )
        })?;

        // Split the predicate conjuncts by the bindings they reference.
        let mut event_conjuncts = Vec::new();
        let mut device_conjuncts = Vec::new();
        if let Some(pred) = &select.predicate {
            for conjunct in pred.conjuncts() {
                if let Some((db, _)) = &device_binding {
                    if references_binding(conjunct, db) {
                        device_conjuncts.push(conjunct.clone());
                        continue;
                    }
                }
                event_conjuncts.push(conjunct.clone());
            }
        }

        // Window aggregates are detection-time constructs backed by
        // device-resident window state: they are only meaningful as whole
        // event conjuncts of the form `AGG(col) OVER LAST n <op> literal`.
        // Anywhere else — action arguments, device-part conjuncts, or a
        // conjunct of any other shape — there is no window to read from,
        // so the plan is rejected up front rather than erroring per tuple.
        for a in &actions {
            if a.args.iter().any(contains_window) {
                return Err(EngineError::Planning(format!(
                    "window aggregates cannot appear in action arguments \
                     (action '{}')",
                    a.action
                )));
            }
        }
        if let Some(c) = device_conjuncts.iter().find(|c| contains_window(c)) {
            return Err(EngineError::Planning(format!(
                "window aggregates must be over the event table, but '{c}' \
                 involves the action-target table"
            )));
        }
        let event_schema = aorta_device::parse_catalog(&aorta_device::catalog_for(event_kind))
            .expect("built-in catalogs always parse");
        let mut windowed = Vec::new();
        for (idx, conjunct) in event_conjuncts.iter().enumerate() {
            if !contains_window(conjunct) {
                continue;
            }
            windowed.push(extract_windowed(
                conjunct,
                idx,
                &event_binding,
                &event_schema,
            )?);
        }

        Ok(AqPlan {
            query_id: u32::MAX, // assigned at registration
            name: name.to_string(),
            event_binding,
            event_kind,
            event_conjuncts,
            windowed,
            device: device_binding.map(|(binding, kind)| DevicePart {
                binding,
                kind,
                conjuncts: device_conjuncts,
            }),
            actions,
        })
    }

    /// A minimal plan for catalog unit tests.
    #[doc(hidden)]
    pub fn test_dummy(name: &str) -> AqPlan {
        AqPlan {
            query_id: u32::MAX,
            name: name.to_string(),
            event_binding: "s".into(),
            event_kind: DeviceKind::Sensor,
            event_conjuncts: Vec::new(),
            windowed: Vec::new(),
            device: None,
            actions: vec![ActionCallPlan {
                action: "photo".into(),
                args: Vec::new(),
            }],
        }
    }
}

/// True when the expression contains a window-aggregate subexpression.
fn contains_window(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if matches!(e, Expr::WindowAgg { .. }) {
            found = true;
        }
    });
    found
}

fn push_op(op: BinOp) -> Option<PushOp> {
    match op {
        BinOp::Eq => Some(PushOp::Eq),
        BinOp::Ne => Some(PushOp::Ne),
        BinOp::Lt => Some(PushOp::Lt),
        BinOp::Le => Some(PushOp::Le),
        BinOp::Gt => Some(PushOp::Gt),
        BinOp::Ge => Some(PushOp::Ge),
        _ => None,
    }
}

fn push_agg(f: AggFunc) -> PushAgg {
    match f {
        AggFunc::Avg => PushAgg::Avg,
        AggFunc::Max => PushAgg::Max,
        AggFunc::Min => PushAgg::Min,
        AggFunc::Count => PushAgg::Count,
    }
}

/// Admits a window-bearing event conjunct only in the supported shape
/// `AGG(col) OVER LAST n <op> literal` (either operand order) with the
/// column on the event table and of a numeric type.
fn extract_windowed(
    conjunct: &Expr,
    idx: usize,
    event_binding: &str,
    event_schema: &aorta_data::Schema,
) -> Result<crate::plan::WindowedCmp, EngineError> {
    let shape_err = || {
        EngineError::Planning(format!(
            "window aggregate comparisons must have the form \
             'AGG(column) OVER LAST n <op> literal', got '{conjunct}'"
        ))
    };
    let Expr::Binary { op, lhs, rhs } = conjunct else {
        return Err(shape_err());
    };
    let Some(op) = push_op(*op) else {
        return Err(shape_err());
    };
    let (window_expr, constant, op) = match (lhs.as_ref(), rhs.as_ref()) {
        (w @ Expr::WindowAgg { .. }, Expr::Literal(v)) => (w, v.clone(), op),
        (Expr::Literal(v), w @ Expr::WindowAgg { .. }) => (w, v.clone(), op.flipped()),
        _ => return Err(shape_err()),
    };
    let Expr::WindowAgg { func, arg, window } = window_expr else {
        unreachable!("matched above");
    };
    let Expr::Column { qualifier, name } = arg.as_ref() else {
        return Err(shape_err());
    };
    if qualifier.as_deref().is_some_and(|q| q != event_binding) {
        return Err(EngineError::Planning(format!(
            "window aggregates must be over the event table ('{event_binding}'), \
             got '{window_expr}'"
        )));
    }
    let attr = event_schema.require(name).map_err(|e| {
        EngineError::Planning(format!("window aggregate over unknown attribute: {e}"))
    })?;
    if !matches!(attr.value_type(), ValueType::Int | ValueType::Float) {
        return Err(EngineError::Planning(format!(
            "{func} OVER LAST aggregates a numeric attribute, but '{name}' is \
             {:?}",
            attr.value_type()
        )));
    }
    Ok(crate::plan::WindowedCmp {
        idx,
        agg: push_agg(*func),
        attr: name.clone(),
        window: *window,
        op,
        constant,
    })
}

/// True when the expression mentions a column qualified by `binding`, or an
/// unqualified column (conservatively treated as possibly-device-related
/// only when qualified names don't say otherwise — unqualified columns bind
/// to the event table by planner convention, so they do not count).
fn references_binding(expr: &Expr, binding: &str) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if let Expr::Column {
            qualifier: Some(q), ..
        } = e
        {
            if q == binding {
                found = true;
            }
        }
    });
    found
}

impl fmt::Display for AqPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AQ {} (id {})", self.name, self.query_id)?;
        writeln!(
            f,
            "  EventScan {} [{}]",
            self.event_binding,
            self.event_conjuncts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" AND ")
        )?;
        if let Some(d) = &self.device {
            writeln!(
                f,
                "  CandidateFilter {} ({}) [{}]",
                d.binding,
                d.kind,
                d.conjuncts
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" AND ")
            )?;
        }
        for a in &self.actions {
            writeln!(
                f,
                "  ActionOp {}({})",
                a.action,
                a.args
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sql::ast::Statement;
    use aorta_sql::parse;

    fn plan(sql: &str) -> Result<AqPlan, EngineError> {
        let catalog = Catalog::with_builtins();
        let stmts = parse(sql).unwrap();
        match stmts.into_iter().next().unwrap() {
            Statement::CreateAq(aq) => AqPlan::plan(&aq.name, &aq.select, &catalog),
            Statement::Select(s) => AqPlan::plan("adhoc", &s, &catalog),
            _ => panic!("expected a query"),
        }
    }

    #[test]
    fn plans_the_paper_snapshot_query() {
        let p = plan(
            r#"CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, "photos/admin")
               FROM sensor s, camera c
               WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
        )
        .unwrap();
        assert_eq!(p.event_binding, "s");
        assert_eq!(p.event_kind, DeviceKind::Sensor);
        assert_eq!(p.event_conjuncts.len(), 1);
        assert_eq!(p.event_conjuncts[0].to_string(), "(s.accel_x > 500)");
        let d = p.device.as_ref().unwrap();
        assert_eq!(d.binding, "c");
        assert_eq!(d.kind, DeviceKind::Camera);
        assert_eq!(d.conjuncts.len(), 1);
        assert!(d.conjuncts[0].to_string().contains("coverage"));
        assert_eq!(p.actions.len(), 1);
        assert_eq!(p.actions[0].action, "photo");
    }

    #[test]
    fn display_shows_operators() {
        let p =
            plan(r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500"#)
                .unwrap();
        let text = p.to_string();
        assert!(text.contains("EventScan s"), "{text}");
        assert!(text.contains("CandidateFilter c (camera)"), "{text}");
        assert!(text.contains("ActionOp photo"), "{text}");
    }

    #[test]
    fn phone_action_query_plans() {
        let p = plan(
            r#"SELECT sendphoto(p.number, "photos/latest.jpg")
               FROM sensor s, phone p
               WHERE s.accel_x > 500 AND p.in_coverage = TRUE"#,
        )
        .unwrap();
        let d = p.device.unwrap();
        assert_eq!(d.kind, DeviceKind::Phone);
        assert_eq!(d.conjuncts.len(), 1);
        assert_eq!(p.event_conjuncts.len(), 1);
    }

    #[test]
    fn non_action_projection_rejected() {
        let err = plan("SELECT s.accel_x FROM sensor s").unwrap_err();
        assert!(err.to_string().contains("not a registered action"), "{err}");
    }

    #[test]
    fn missing_event_table_rejected() {
        let err = plan(r#"SELECT photo(c.ip, c.loc, "d") FROM camera c"#).unwrap_err();
        assert!(err.to_string().contains("no event table"), "{err}");
    }

    #[test]
    fn two_event_tables_rejected() {
        let err =
            plan(r#"SELECT photo(c.ip, s.loc, "d") FROM sensor s, phone p, camera c"#).unwrap_err();
        assert!(
            err.to_string().contains("more than one event table"),
            "{err}"
        );
    }

    #[test]
    fn mixed_action_kinds_rejected() {
        let err = plan(r#"SELECT photo(c.ip, s.loc, "d"), beep(s.id) FROM sensor s, camera c"#)
            .unwrap_err();
        assert!(err.to_string().contains("same device kind"), "{err}");
    }

    #[test]
    fn windowed_conjuncts_are_extracted() {
        let p = plan(
            r#"SELECT beep(t.id) FROM sensor t, sensor s
               WHERE s.accel_x > 100 AND AVG(s.accel_x) OVER LAST 5 > 400"#,
        )
        .unwrap();
        assert_eq!(p.event_conjuncts.len(), 2);
        assert_eq!(p.windowed.len(), 1);
        let w = &p.windowed[0];
        assert_eq!(w.idx, 1);
        assert_eq!(w.agg, aorta_device::pushdown::PushAgg::Avg);
        assert_eq!(w.attr, "accel_x");
        assert_eq!(w.window, 5);
        assert_eq!(w.op, aorta_device::pushdown::PushOp::Gt);
        assert_eq!(w.constant, Value::Int(400));
    }

    #[test]
    fn flipped_windowed_comparison_normalizes() {
        let p = plan(
            r#"SELECT beep(t.id) FROM sensor t, sensor s
               WHERE 400 < MIN(s.accel_x) OVER LAST 3"#,
        )
        .unwrap();
        let w = &p.windowed[0];
        assert_eq!(w.agg, aorta_device::pushdown::PushAgg::Min);
        assert_eq!(w.op, aorta_device::pushdown::PushOp::Gt);
    }

    #[test]
    fn windowed_shapes_outside_the_supported_class_are_rejected() {
        // Not compared to a literal.
        let err = plan(
            r#"SELECT beep(t.id) FROM sensor t, sensor s
               WHERE AVG(s.accel_x) OVER LAST 5 > s.temp"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("must have the form"), "{err}");
        // In an action argument.
        let err = plan(
            r#"SELECT beep(COUNT(s.id) OVER LAST 2) FROM sensor t, sensor s
               WHERE s.accel_x > 500"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("action arguments"), "{err}");
        // Over the action-target table.
        let err = plan(
            r#"SELECT beep(t.id) FROM sensor t, sensor s
               WHERE MAX(t.accel_x) OVER LAST 4 > 500"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("must be over the event table"),
            "{err}"
        );
        // Over a non-numeric attribute.
        let err = plan(
            r#"SELECT beep(t.id) FROM sensor t, sensor s
               WHERE MAX(s.loc) OVER LAST 4 = 1"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("numeric attribute"), "{err}");
    }

    #[test]
    fn sensor_event_can_trigger_sensor_action() {
        // beep() targets sensors, and the event table is also the sensor
        // table: the first sensor table becomes the device part, so a second
        // sensor table must provide events.
        let p = plan(r#"SELECT beep(t.id) FROM sensor t, sensor s WHERE s.accel_x > 500"#).unwrap();
        assert_eq!(p.device.as_ref().unwrap().binding, "t");
        assert_eq!(p.event_binding, "s");
    }
}
