//! The shared predicate index powering vectorized event detection.
//!
//! The paper's §2 multi-query sharing argument is that many concurrent AQs
//! watch the *same* sensor streams with heavily overlapping predicates, so
//! detection cost should follow the number of *distinct* comparisons, not
//! the number of registered queries. This module supplies that machinery:
//!
//! * every registered AQ's event-part WHERE clause is decomposed into
//!   conjuncts; each conjunct either maps to a **distinct comparison**
//!   (`attribute op constant`, interned and refcounted across queries) or is
//!   kept verbatim as a **scalar fallback** slot,
//! * comparisons are grouped by attribute into lanes; integer thresholds on
//!   one attribute are kept sorted so a batch value resolves all of them
//!   with two binary searches per tuple (one pass over the lane sets the
//!   match bit of every threshold),
//! * queries with identical conjunct lists share one **query group** with a
//!   single per-source rising-edge state, so a firing group fans out to its
//!   members instead of being recomputed per query.
//!
//! Detection runs in three phases (see `exec.rs`): a side-effect-free batch
//! phase here ([`PredicateIndex::plan_epoch`]), a per-plan replay phase in
//! the engine that reproduces the scalar path's traces and counters byte
//! for byte for the few *affected* plans, and a commit phase
//! ([`PredicateIndex::commit_epoch`]) that advances the shared edge state.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use aorta_data::{Schema, Tuple, Value};
use aorta_device::DeviceKind;
use aorta_sql::ast::Expr;

use crate::expr::{eval_predicate, extract_comparison, CmpOp, Env, EvalContext};
use crate::plan::AqPlan;

/// Canonical, orderable key form of an indexable comparison constant.
/// Floats are keyed by bit pattern: two spellings that compare equal but
/// differ in bits (e.g. `-0.0` vs `0.0`) get separate comparisons — one
/// redundant evaluation, never a wrong answer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ConstKey {
    Bool(bool),
    Int(i64),
    FloatBits(u64),
    Str(String),
}

impl ConstKey {
    fn of(v: &Value) -> Option<ConstKey> {
        match v {
            Value::Bool(b) => Some(ConstKey::Bool(*b)),
            Value::Int(i) => Some(ConstKey::Int(*i)),
            Value::Float(f) => Some(ConstKey::FloatBits(f.to_bits())),
            Value::Str(s) => Some(ConstKey::Str(s.clone())),
            _ => None,
        }
    }
}

/// Dedup key of one distinct comparison: same kind, attribute, operator and
/// constant ⇒ same interned comparison, whatever query it came from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CmpKey {
    kind: DeviceKind,
    attr: String,
    op: CmpOp,
    constant: ConstKey,
}

/// One interned comparison with its cross-query reference count.
#[derive(Debug, Clone)]
struct CmpEntry {
    kind: DeviceKind,
    attr: String,
    op: CmpOp,
    constant: Value,
    /// Number of group conjunct slots referencing this comparison.
    refs: usize,
}

/// How one conjunct of a query group is evaluated per batch.
#[derive(Debug, Clone)]
enum ConjunctSlot {
    /// Shared comparison: read the batch bitset for this interned id.
    Indexed(usize),
    /// Non-indexable conjunct: evaluate the expression per tuple (still
    /// only once per *group*, not once per member query).
    Fallback(Expr),
}

/// Identity of a query group: queries agree on event kind, event binding and
/// the exact conjunct list (signature = `Debug`-rendered conjuncts, which
/// distinguishes `> 1` from `> 1.0` where `Display` would not).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct GroupKey {
    kind: DeviceKind,
    binding: String,
    signature: String,
}

impl GroupKey {
    fn of(plan: &AqPlan) -> GroupKey {
        let mut signature = String::new();
        for (i, c) in plan.event_conjuncts.iter().enumerate() {
            if i > 0 {
                signature.push('\u{1f}');
            }
            signature.push_str(&format!("{c:?}"));
        }
        GroupKey {
            kind: plan.event_kind,
            binding: plan.event_binding.clone(),
            signature,
        }
    }
}

/// One member query of a group.
#[derive(Debug, Clone)]
struct Member {
    /// Catalog name — phase B iterates affected plans in name order, the
    /// same order the scalar loop visits them.
    name: String,
    /// Sources whose shared edge state was TRUE when this member joined and
    /// which the member has not yet observed in a batch. For these the
    /// member's own edge state is still "absent" (= false), so the shared
    /// state must not be consulted on its behalf; the set shrinks as the
    /// sources reappear in batches and is empty for members that joined a
    /// fresh group.
    pending: BTreeSet<i64>,
}

/// A set of queries with identical detection behaviour, evaluated once per
/// batch and fanned out to every member.
#[derive(Debug, Clone)]
struct QueryGroup {
    slots: Vec<ConjunctSlot>,
    /// `indexed_prefix[i]` = number of `Indexed` slots among the first `i`.
    indexed_prefix: Vec<u32>,
    /// Member queries by id.
    members: BTreeMap<u32, Member>,
    /// Union of all members' pending sets (fast emptiness check per epoch).
    pending_union: BTreeSet<i64>,
    /// Shared per-source rising-edge state (last epoch's match outcome).
    edge: BTreeMap<i64, bool>,
}

/// Per-tuple walk outcome of a group's conjunct list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TupleOutcome {
    /// Tuple had no usable id; skipped (counted per member in phase B).
    Idless,
    /// Walk stopped at conjunct `idx`: it evaluated false, or errored.
    Stop {
        /// Index of the stopping conjunct.
        idx: usize,
        /// True when the conjunct errored rather than evaluating false.
        error: bool,
    },
    /// Every conjunct held — the tuple matches.
    Matched,
}

/// Conjunct-evaluation bookkeeping for one epoch, in *logical* (per-member)
/// units so the totals line up with what the scalar loop would have done.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EvalTally {
    /// Evaluations served by interned comparisons.
    pub indexed: u64,
    /// Evaluations served by scalar-fallback slots.
    pub fallback: u64,
    /// Total conjunct evaluations (short-circuit aware).
    pub total: u64,
}

/// Phase-A record for one *affected* group.
#[derive(Debug, Clone)]
pub(crate) struct GroupEpoch {
    /// One outcome per tuple of the group's kind, in batch order.
    pub stops: Vec<TupleOutcome>,
    /// The group's shared edge state as of the start of the epoch.
    pub pre_edge: BTreeMap<i64, bool>,
}

/// Everything phase A computed: replay instructions for affected plans and
/// commit instructions for every group.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochOutcomes {
    /// Affected plans as (name, query id), sorted by name — the order the
    /// scalar loop would visit them.
    pub affected: Vec<(String, u32)>,
    /// Affected query id → index into `groups`.
    pub by_query: BTreeMap<u32, usize>,
    /// Per-affected-group walk outcomes.
    pub groups: Vec<GroupEpoch>,
    /// Pending-source sets for affected members that have any (see
    /// [`Member`]); absent means the member shares the group edge fully.
    pub pending: BTreeMap<u32, BTreeSet<i64>>,
    /// Per kind: the id of each batch tuple (`None` = id-less).
    pub sources: BTreeMap<DeviceKind, Vec<Option<i64>>>,
    /// Per group: the final per-source match state to commit.
    pub commits: Vec<(GroupKey, BTreeMap<i64, bool>)>,
    /// Logical conjunct-evaluation counts for the obs counters.
    pub tally: EvalTally,
}

/// Packed per-comparison match/error bitsets over one scan batch.
struct CmpBatch {
    blocks_per_cmp: usize,
    matched: Vec<u64>,
    errored: Vec<u64>,
}

impl CmpBatch {
    fn new(cmps: usize, tuples: usize) -> CmpBatch {
        let blocks_per_cmp = tuples.div_ceil(64);
        CmpBatch {
            blocks_per_cmp,
            matched: vec![0; cmps * blocks_per_cmp],
            errored: vec![0; cmps * blocks_per_cmp],
        }
    }

    fn set_matched(&mut self, cmp: usize, t: usize) {
        self.matched[cmp * self.blocks_per_cmp + t / 64] |= 1 << (t % 64);
    }

    fn set_errored(&mut self, cmp: usize, t: usize) {
        self.errored[cmp * self.blocks_per_cmp + t / 64] |= 1 << (t % 64);
    }

    fn is_matched(&self, cmp: usize, t: usize) -> bool {
        self.matched[cmp * self.blocks_per_cmp + t / 64] >> (t % 64) & 1 == 1
    }

    fn is_errored(&self, cmp: usize, t: usize) -> bool {
        self.errored[cmp * self.blocks_per_cmp + t / 64] >> (t % 64) & 1 == 1
    }
}

/// Attribute lane: all interned comparisons on one (kind, attribute),
/// split so integer thresholds resolve in one sorted pass.
#[derive(Debug, Clone, Default)]
struct AttrLane {
    /// Int-constant comparisons sorted by constant.
    ints: Vec<(i64, CmpOp, usize)>,
    /// Comparisons with non-Int constants: per-comparison `compare()`.
    general: Vec<usize>,
}

/// The shared predicate index: interned comparisons, attribute lanes, and
/// query groups with their rising-edge state.
///
/// Registration mirrors the catalog exactly — [`crate::Aorta`] registers a
/// plan's event conjuncts on `CREATE AQ` and releases them on `DROP AQ`, so
/// the index is empty precisely when no queries are registered.
#[derive(Debug, Clone, Default)]
pub struct PredicateIndex {
    /// Interned comparisons; `None` marks a freed slot awaiting reuse.
    cmps: Vec<Option<CmpEntry>>,
    /// Freed slots of `cmps`.
    free: Vec<usize>,
    /// Dedup map: comparison key → slot in `cmps`.
    by_key: BTreeMap<CmpKey, usize>,
    /// Evaluation lanes per (kind, attribute), rebuilt when the interned
    /// set for that attribute changes.
    lanes: BTreeMap<DeviceKind, BTreeMap<String, AttrLane>>,
    /// Query groups by identity.
    groups: BTreeMap<GroupKey, QueryGroup>,
}

impl PredicateIndex {
    /// An empty index.
    pub fn new() -> PredicateIndex {
        PredicateIndex::default()
    }

    /// Number of live distinct comparisons.
    pub fn cmp_count(&self) -> usize {
        self.by_key.len()
    }

    /// Number of query groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of member queries across all groups (= registered AQs).
    pub fn member_count(&self) -> usize {
        self.groups.values().map(|g| g.members.len()).sum()
    }

    /// True when no queries are registered: no comparisons, no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty() && self.by_key.is_empty()
    }

    /// Rising-edge entries tracked, in per-query units: each group's edge
    /// map counts once per member, matching the scalar map's granularity.
    pub(crate) fn edge_entries(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.edge.len() * g.members.len())
            .sum()
    }

    /// Registers a planned query's event conjuncts. Joins an existing group
    /// when an identical conjunct list is already indexed; otherwise interns
    /// the query's comparisons and creates a new group.
    pub(crate) fn register(&mut self, plan: &AqPlan, schema: &Schema) {
        let key = GroupKey::of(plan);
        if let Some(group) = self.groups.get_mut(&key) {
            // Sources the shared state already remembers as TRUE would fake
            // a pre-existing edge for the newcomer; defer those (Member).
            let pending: BTreeSet<i64> = group
                .edge
                .iter()
                .filter(|(_, m)| **m)
                .map(|(s, _)| *s)
                .collect();
            group.pending_union.extend(pending.iter().copied());
            group.members.insert(
                plan.query_id,
                Member {
                    name: plan.name.clone(),
                    pending,
                },
            );
            return;
        }
        let mut slots = Vec::with_capacity(plan.event_conjuncts.len());
        let mut indexed_prefix = Vec::with_capacity(plan.event_conjuncts.len() + 1);
        indexed_prefix.push(0u32);
        for conjunct in &plan.event_conjuncts {
            let slot = match extract_comparison(conjunct, &plan.event_binding, schema) {
                Some(cmp) => ConjunctSlot::Indexed(self.intern(plan.event_kind, cmp)),
                None => ConjunctSlot::Fallback(conjunct.clone()),
            };
            let prev = *indexed_prefix.last().expect("seeded");
            indexed_prefix.push(prev + matches!(slot, ConjunctSlot::Indexed(_)) as u32);
            slots.push(slot);
        }
        let mut members = BTreeMap::new();
        members.insert(
            plan.query_id,
            Member {
                name: plan.name.clone(),
                pending: BTreeSet::new(),
            },
        );
        self.groups.insert(
            key,
            QueryGroup {
                slots,
                indexed_prefix,
                members,
                pending_union: BTreeSet::new(),
                edge: BTreeMap::new(),
            },
        );
    }

    /// Releases a dropped query: leaves its group, and when the group
    /// empties, drops its edge state and releases its interned comparisons.
    pub(crate) fn unregister(&mut self, plan: &AqPlan) {
        let key = GroupKey::of(plan);
        let Some(group) = self.groups.get_mut(&key) else {
            return;
        };
        group.members.remove(&plan.query_id);
        if group.members.is_empty() {
            let group = self.groups.remove(&key).expect("present");
            for slot in &group.slots {
                if let ConjunctSlot::Indexed(id) = slot {
                    self.release(*id);
                }
            }
        } else if !group.pending_union.is_empty() {
            // Recompute the union so it doesn't retain the leaver's sources.
            group.pending_union = group
                .members
                .values()
                .flat_map(|m| m.pending.iter().copied())
                .collect();
        }
    }

    fn intern(&mut self, kind: DeviceKind, cmp: crate::expr::VectorizableCmp) -> usize {
        let key = CmpKey {
            kind,
            attr: cmp.attr.clone(),
            op: cmp.op,
            constant: ConstKey::of(&cmp.constant).expect("extraction checked the constant"),
        };
        if let Some(&id) = self.by_key.get(&key) {
            self.cmps[id].as_mut().expect("live").refs += 1;
            return id;
        }
        let entry = CmpEntry {
            kind,
            attr: cmp.attr,
            op: cmp.op,
            constant: cmp.constant,
            refs: 1,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                self.cmps[slot] = Some(entry);
                slot
            }
            None => {
                self.cmps.push(Some(entry));
                self.cmps.len() - 1
            }
        };
        let (kind, attr) = {
            let e = self.cmps[id].as_ref().expect("just set");
            (e.kind, e.attr.clone())
        };
        self.by_key.insert(key, id);
        self.rebuild_lane(kind, &attr);
        id
    }

    fn release(&mut self, id: usize) {
        let entry = self.cmps[id].as_mut().expect("live");
        entry.refs -= 1;
        if entry.refs > 0 {
            return;
        }
        let entry = self.cmps[id].take().expect("live");
        let key = CmpKey {
            kind: entry.kind,
            attr: entry.attr.clone(),
            op: entry.op,
            constant: ConstKey::of(&entry.constant).expect("was interned"),
        };
        self.by_key.remove(&key);
        self.free.push(id);
        self.rebuild_lane(entry.kind, &entry.attr);
    }

    fn rebuild_lane(&mut self, kind: DeviceKind, attr: &str) {
        let mut lane = AttrLane::default();
        let lo = CmpKey {
            kind,
            attr: attr.to_string(),
            op: CmpOp::Eq,
            constant: ConstKey::Bool(false),
        };
        for (key, &id) in self.by_key.range(lo..) {
            if key.kind != kind || key.attr != attr {
                break;
            }
            match &key.constant {
                ConstKey::Int(c) => lane.ints.push((*c, key.op, id)),
                _ => lane.general.push(id),
            }
        }
        lane.ints.sort_by_key(|(c, _, _)| *c);
        let by_attr = self.lanes.entry(kind).or_default();
        if lane.ints.is_empty() && lane.general.is_empty() {
            by_attr.remove(attr);
            if by_attr.is_empty() {
                self.lanes.remove(&kind);
            }
        } else {
            by_attr.insert(attr.to_string(), lane);
        }
    }

    /// Evaluates every interned comparison of `kind` over a scan batch.
    fn eval_cmps(&self, kind: DeviceKind, tuples: &[Tuple], schema: &Schema) -> CmpBatch {
        let mut batch = CmpBatch::new(self.cmps.len(), tuples.len());
        let Some(lanes) = self.lanes.get(&kind) else {
            return batch;
        };
        for (attr, lane) in lanes {
            let Some(col) = schema.index_of(attr) else {
                continue; // registration checked the schema; defensive only
            };
            for (t, tuple) in tuples.iter().enumerate() {
                match tuple.get(col) {
                    // NULL (or missing) never matches and never errors,
                    // exactly like the scalar NULL-comparison path.
                    None | Some(Value::Null) => {}
                    Some(v @ Value::Int(n)) => {
                        // One pass over the sorted thresholds: two binary
                        // searches classify every threshold against `n`.
                        let lt = lane.ints.partition_point(|(c, _, _)| c < n);
                        let le = lane.ints.partition_point(|(c, _, _)| c <= n);
                        for (i, (_, op, id)) in lane.ints.iter().enumerate() {
                            let ord = match i {
                                i if i < lt => Ordering::Greater,
                                i if i < le => Ordering::Equal,
                                _ => Ordering::Less,
                            };
                            if op.matches(ord) {
                                batch.set_matched(*id, t);
                            }
                        }
                        for &id in &lane.general {
                            self.eval_general(id, v, &mut batch, t);
                        }
                    }
                    Some(v) => {
                        // Non-Int value (float, string, bool, location):
                        // every comparison goes through `compare()`, which
                        // reproduces the scalar mixed-type semantics —
                        // including its errors.
                        for &(_, _, id) in &lane.ints {
                            self.eval_general(id, v, &mut batch, t);
                        }
                        for &id in &lane.general {
                            self.eval_general(id, v, &mut batch, t);
                        }
                    }
                }
            }
        }
        batch
    }

    fn eval_general(&self, id: usize, value: &Value, batch: &mut CmpBatch, t: usize) {
        let entry = self.cmps[id].as_ref().expect("lanes index live cmps");
        match value.compare(&entry.constant) {
            Ok(ord) => {
                if entry.op.matches(ord) {
                    batch.set_matched(id, t);
                }
            }
            Err(_) => batch.set_errored(id, t),
        }
    }

    /// Phase A: evaluates each distinct comparison once per batch, walks
    /// every group's conjunct list per tuple, and computes which plans need
    /// side effects replayed. Pure — no engine state is touched.
    pub(crate) fn plan_epoch(
        &self,
        cache: &BTreeMap<DeviceKind, Vec<Tuple>>,
        ctx: &EvalContext<'_>,
    ) -> EpochOutcomes {
        let mut out = EpochOutcomes::default();
        let mut batches: BTreeMap<DeviceKind, CmpBatch> = BTreeMap::new();
        let mut idless: BTreeMap<DeviceKind, bool> = BTreeMap::new();
        for (&kind, tuples) in cache {
            let schema = ctx.registry.schema(kind);
            let id_idx = schema.index_of("id").expect("catalogs define id");
            let sources: Vec<Option<i64>> = tuples
                .iter()
                .map(|t| t.get(id_idx).and_then(Value::as_i64))
                .collect();
            idless.insert(kind, sources.iter().any(Option::is_none));
            out.sources.insert(kind, sources);
            batches.insert(kind, self.eval_cmps(kind, tuples, schema));
        }

        for (key, group) in &self.groups {
            let Some(tuples) = cache.get(&key.kind) else {
                continue; // kind not scanned this epoch: state untouched
            };
            let batch = &batches[&key.kind];
            let sources = &out.sources[&key.kind];
            let schema = ctx.registry.schema(key.kind);
            let kind_has_idless = idless[&key.kind];

            let mut stops = Vec::with_capacity(tuples.len());
            let mut final_edge: BTreeMap<i64, bool> = BTreeMap::new();
            let mut rising_shared = false;
            let mut pending_rising = false;
            let mut any_error = false;
            let mut reached_indexed = 0u64;
            let mut reached_fallback = 0u64;
            for (t, tuple) in tuples.iter().enumerate() {
                let Some(source) = sources[t] else {
                    stops.push(TupleOutcome::Idless);
                    continue;
                };
                let mut stop: Option<(usize, bool)> = None;
                for (si, slot) in group.slots.iter().enumerate() {
                    let ok = match slot {
                        ConjunctSlot::Indexed(id) => {
                            if batch.is_errored(*id, t) {
                                stop = Some((si, true));
                                break;
                            }
                            batch.is_matched(*id, t)
                        }
                        ConjunctSlot::Fallback(expr) => {
                            let env = Env::new().bind(&key.binding, schema, tuple);
                            match eval_predicate(expr, &env, ctx) {
                                Ok(b) => b,
                                Err(_) => {
                                    stop = Some((si, true));
                                    break;
                                }
                            }
                        }
                    };
                    if !ok {
                        stop = Some((si, false));
                        break;
                    }
                }
                let reached = match stop {
                    Some((si, _)) => si + 1,
                    None => group.slots.len(),
                };
                reached_indexed += u64::from(group.indexed_prefix[reached]);
                reached_fallback += reached as u64 - u64::from(group.indexed_prefix[reached]);
                let matched = stop.is_none();
                if let Some((_, true)) = stop {
                    any_error = true;
                }
                let first_seen = !final_edge.contains_key(&source);
                // Audited fold: the inner `unwrap_or(false)` is the edge
                // map's "never observed ⇒ low" encoding (same invariant as
                // the scalar loop's `edge.insert(..).unwrap_or(false)`),
                // not a swallowed failure.
                let was = final_edge
                    .get(&source)
                    .copied()
                    .unwrap_or_else(|| group.edge.get(&source).copied().unwrap_or(false));
                if matched && !was {
                    rising_shared = true;
                }
                if matched && first_seen && group.pending_union.contains(&source) {
                    // A member still pending on this source sees was=false
                    // where the shared state says true.
                    pending_rising = true;
                }
                final_edge.insert(source, matched);
                stops.push(match stop {
                    None => TupleOutcome::Matched,
                    Some((idx, error)) => TupleOutcome::Stop { idx, error },
                });
            }

            let member_count = group.members.len() as u64;
            out.tally.indexed += reached_indexed * member_count;
            out.tally.fallback += reached_fallback * member_count;
            out.tally.total += (reached_indexed + reached_fallback) * member_count;

            let affected = any_error || kind_has_idless || rising_shared || pending_rising;
            out.commits.push((key.clone(), final_edge));
            if affected {
                let gi = out.groups.len();
                for (qid, member) in &group.members {
                    out.by_query.insert(*qid, gi);
                    out.affected.push((member.name.clone(), *qid));
                    if !member.pending.is_empty() {
                        out.pending.insert(*qid, member.pending.clone());
                    }
                }
                out.groups.push(GroupEpoch {
                    stops,
                    pre_edge: group.edge.clone(),
                });
            }
        }
        out.affected.sort();
        out
    }

    /// Phase C: commits the per-source match state computed by
    /// [`PredicateIndex::plan_epoch`] and retires observed pending sources.
    pub(crate) fn commit_epoch(&mut self, commits: Vec<(GroupKey, BTreeMap<i64, bool>)>) {
        for (key, final_edge) in commits {
            let Some(group) = self.groups.get_mut(&key) else {
                continue;
            };
            if !group.pending_union.is_empty() {
                for member in group.members.values_mut() {
                    for s in final_edge.keys() {
                        member.pending.remove(s);
                    }
                }
                for s in final_edge.keys() {
                    group.pending_union.remove(s);
                }
            }
            for (s, matched) in final_edge {
                group.edge.insert(s, matched);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_device::PervasiveLab;
    use aorta_net::DeviceRegistry;
    use aorta_sql::ast::Statement;

    fn registry() -> DeviceRegistry {
        DeviceRegistry::from_lab(PervasiveLab::standard())
    }

    /// Plans `WHERE <pred>` over the sensor table with a unique name/id.
    fn sensor_plan(name: &str, id: u32, pred: &str) -> AqPlan {
        let sql = format!("SELECT beep(t.id) FROM sensor t, sensor s WHERE {pred}");
        let stmts = aorta_sql::parse(&sql).unwrap();
        let Statement::Select(select) = stmts.into_iter().next().unwrap() else {
            panic!("expected SELECT");
        };
        let catalog = crate::Catalog::with_builtins();
        let mut plan = AqPlan::plan(name, &select, &catalog).unwrap();
        plan.query_id = id;
        plan
    }

    fn sensor_tuple(reg: &DeviceRegistry, id: Option<i64>, accel_x: Value) -> Tuple {
        let schema = reg.schema(DeviceKind::Sensor);
        let mut values = vec![Value::Null; schema.len()];
        if let Some(id) = id {
            values[schema.index_of("id").unwrap()] = Value::Int(id);
        }
        values[schema.index_of("accel_x").unwrap()] = accel_x;
        Tuple::new(values)
    }

    fn outcome_for(
        index: &PredicateIndex,
        reg: &DeviceRegistry,
        qid: u32,
        tuples: Vec<Tuple>,
    ) -> Vec<TupleOutcome> {
        let ctx = EvalContext { registry: reg };
        let mut cache = BTreeMap::new();
        cache.insert(DeviceKind::Sensor, tuples);
        let out = index.plan_epoch(&cache, &ctx);
        let gi = out.by_query[&qid];
        out.groups[gi].stops.clone()
    }

    #[test]
    fn identical_queries_share_one_comparison_and_one_group() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let mut index = PredicateIndex::new();
        let a = sensor_plan("a", 0, "s.accel_x > 500");
        let b = sensor_plan("b", 1, "s.accel_x > 500");
        index.register(&a, &schema);
        index.register(&b, &schema);
        assert_eq!(index.cmp_count(), 1);
        assert_eq!(index.group_count(), 1);
        assert_eq!(index.member_count(), 2);
        // Dropping one member keeps the shared comparison alive.
        index.unregister(&a);
        assert_eq!(index.cmp_count(), 1);
        assert_eq!(index.member_count(), 1);
        index.unregister(&b);
        assert!(index.is_empty(), "index must empty with the catalog");
    }

    #[test]
    fn interleaved_register_drop_is_symmetric() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let mut index = PredicateIndex::new();
        let plans: Vec<AqPlan> = (0..8)
            .map(|i| {
                sensor_plan(
                    &format!("q{i}"),
                    i,
                    &format!("s.accel_x > {}", 100 * (i % 3)),
                )
            })
            .collect();
        for p in &plans {
            index.register(p, &schema);
        }
        assert_eq!(index.cmp_count(), 3);
        // Drop evens, re-register them, drop everything: empty again.
        for p in plans.iter().step_by(2) {
            index.unregister(p);
        }
        for p in plans.iter().step_by(2) {
            index.register(p, &schema);
        }
        for p in &plans {
            index.unregister(p);
        }
        assert!(index.is_empty());
        assert_eq!(index.edge_entries(), 0);
    }

    #[test]
    fn threshold_boundaries_resolve_exactly() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let mut index = PredicateIndex::new();
        // Six operators on the same constant share one attribute lane.
        let preds = [
            ("eq", "s.accel_x = 500"),
            ("ne", "s.accel_x <> 500"),
            ("lt", "s.accel_x < 500"),
            ("le", "s.accel_x <= 500"),
            ("gt", "s.accel_x > 500"),
            ("ge", "s.accel_x >= 500"),
        ];
        let plans: Vec<AqPlan> = preds
            .iter()
            .enumerate()
            .map(|(i, (n, p))| sensor_plan(n, i as u32, p))
            .collect();
        for p in &plans {
            index.register(p, &schema);
        }
        let tuples: Vec<Tuple> = [499, 500, 501]
            .into_iter()
            .map(|v| sensor_tuple(&reg, Some(0), Value::Int(v)))
            .collect();
        // expected[op] = matches for values [499, 500, 501]
        let expected = [
            [false, true, false], // =
            [true, false, true],  // <>
            [true, false, false], // <
            [true, true, false],  // <=
            [false, false, true], // >
            [false, true, true],  // >=
        ];
        for (plan, want) in plans.iter().zip(expected) {
            let stops = outcome_for(&index, &reg, plan.query_id, tuples.clone());
            for (t, want_match) in want.into_iter().enumerate() {
                let got = stops[t] == TupleOutcome::Matched;
                assert_eq!(got, want_match, "{} on tuple {t}", plan.name);
            }
        }
    }

    #[test]
    fn idless_tuples_are_skipped_like_the_scalar_path() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let mut index = PredicateIndex::new();
        let plan = sensor_plan("q", 0, "s.accel_x > 500");
        index.register(&plan, &schema);
        let tuples = vec![
            sensor_tuple(&reg, None, Value::Int(600)),
            sensor_tuple(&reg, Some(3), Value::Int(600)),
        ];
        let stops = outcome_for(&index, &reg, 0, tuples);
        assert_eq!(stops[0], TupleOutcome::Idless);
        assert_eq!(stops[1], TupleOutcome::Matched);
    }

    #[test]
    fn type_mismatch_is_an_error_outcome_not_false() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let mut index = PredicateIndex::new();
        // `s.loc > 500` indexes (loc exists, 500 is a constant) but every
        // evaluation is a type error, exactly like the scalar path.
        let plan = sensor_plan("q", 0, "s.loc > 500");
        index.register(&plan, &schema);
        let mut tuple = sensor_tuple(&reg, Some(1), Value::Int(0));
        let loc_idx = schema.index_of("loc").unwrap();
        let mut values = tuple.values().to_vec();
        values[loc_idx] = Value::Location(aorta_data::Location::ORIGIN);
        tuple = Tuple::new(values);
        let stops = outcome_for(&index, &reg, 0, vec![tuple]);
        assert_eq!(
            stops[0],
            TupleOutcome::Stop {
                idx: 0,
                error: true
            }
        );
    }

    #[test]
    fn late_joiner_does_not_inherit_the_shared_edge() {
        let reg = registry();
        let schema = reg.schema(DeviceKind::Sensor).clone();
        let ctx = EvalContext { registry: &reg };
        let mut index = PredicateIndex::new();
        let a = sensor_plan("a", 0, "s.accel_x > 500");
        index.register(&a, &schema);
        // Epoch 1: source 7 matches — shared edge goes TRUE for query a.
        let mut cache = BTreeMap::new();
        cache.insert(
            DeviceKind::Sensor,
            vec![sensor_tuple(&reg, Some(7), Value::Int(600))],
        );
        let out = index.plan_epoch(&cache, &ctx);
        assert_eq!(out.affected.len(), 1, "a rises");
        index.commit_epoch(out.commits);
        // Query b joins the group after the edge is already TRUE.
        let b = sensor_plan("b", 1, "s.accel_x > 500");
        index.register(&b, &schema);
        // Epoch 2: source 7 still matches. For a this is a steady state (no
        // rising edge); for b it is b's FIRST observation, so b must fire.
        let out = index.plan_epoch(&cache, &ctx);
        assert!(
            out.affected.iter().any(|(n, _)| n == "b"),
            "late joiner must be replayed: {:?}",
            out.affected
        );
        assert!(
            out.pending.contains_key(&1),
            "b's pending set must reach phase B"
        );
        index.commit_epoch(out.commits);
        // Epoch 3: b is synced now; steady state affects nobody.
        let out = index.plan_epoch(&cache, &ctx);
        assert!(out.affected.is_empty(), "{:?}", out.affected);
    }
}
