//! Engine configuration.

use aorta_sim::SimDuration;

/// How a batch of concurrent action requests is distributed over devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Each request independently goes to its currently-cheapest available
    /// candidate (pure device-selection optimization, §2.3).
    MinCost,
    /// Batches of two or more requests are scheduled together with
    /// LERFA + SRFE (§5); singletons fall back to min-cost.
    Scheduled,
}

/// Tunable engine parameters.
///
/// The defaults correspond to the paper's deployment: synchronization and
/// probing on, scheduled dispatch, one-second sensor sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Master seed for all engine randomness.
    pub seed: u64,
    /// Enable the locking mechanism (§4). Turning this off reproduces the
    /// §6.2 interference failures.
    pub sync_enabled: bool,
    /// Enable the probing mechanism (§4). Turning it off skips availability
    /// checks and uses the last known status for costing.
    pub probe_enabled: bool,
    /// How often the engine samples the sensor table for events.
    pub sample_period: SimDuration,
    /// A request that cannot start executing within this window fails with
    /// "no device available" (events are transient; a late action is
    /// useless).
    pub request_timeout: SimDuration,
    /// Batch dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Extra execution attempts on *other* candidates after a device-level
    /// failure (connect timeout, busy rejection). Zero (the default, and the
    /// paper's behaviour) fails the request on first error.
    pub retry_failed: u32,
    /// When the local candidate set is exhausted (no probeable candidate at
    /// dispatch, or no surviving candidate after a crash), park the request
    /// in an escalation buffer for an external gateway instead of failing it
    /// terminally. Off by default — a standalone engine has no sibling to
    /// escalate to, so exhaustion stays a terminal `no_candidate`/`orphaned`
    /// outcome exactly as before.
    pub escalate_exhausted: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 42,
            sync_enabled: true,
            probe_enabled: true,
            sample_period: SimDuration::from_secs(1),
            request_timeout: SimDuration::from_secs(30),
            dispatch: DispatchPolicy::Scheduled,
            retry_failed: 0,
            escalate_exhausted: false,
        }
    }
}

impl EngineConfig {
    /// The default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }

    /// Disables synchronization (the §6.2 "without locking" arm).
    pub fn without_sync(mut self) -> Self {
        self.sync_enabled = false;
        self
    }

    /// Disables probing.
    pub fn without_probing(mut self) -> Self {
        self.probe_enabled = false;
        self
    }

    /// Sets the dispatch policy, builder style.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Enables failover retries, builder style.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retry_failed = retries;
        self
    }

    /// Enables gateway escalation of exhausted requests, builder style.
    /// Used by `aorta-cluster`, whose gateway re-routes escalated requests
    /// to sibling shards.
    pub fn with_escalation(mut self) -> Self {
        self.escalate_exhausted = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = EngineConfig::default();
        assert!(c.sync_enabled);
        assert!(c.probe_enabled);
        assert_eq!(c.dispatch, DispatchPolicy::Scheduled);
        assert_eq!(c.sample_period, SimDuration::from_secs(1));
    }

    #[test]
    fn builders_toggle_flags() {
        let c = EngineConfig::seeded(7).without_sync().without_probing();
        assert_eq!(c.seed, 7);
        assert!(!c.sync_enabled);
        assert!(!c.probe_enabled);
        let c = EngineConfig::default().with_dispatch(DispatchPolicy::MinCost);
        assert_eq!(c.dispatch, DispatchPolicy::MinCost);
    }
}
