//! Engine configuration.

use aorta_net::BreakerConfig;
use aorta_sim::SimDuration;

/// Admission-control and brownout tunables (the overload-safe lifecycle).
///
/// A token bucket paces new request admissions, and a predicted backlog
/// makespan (pending work times the engine's observed mean action latency)
/// is compared against multiples of the target SLO: past
/// `brownout_multiple` the engine degrades action quality (lo-res photos at
/// reduced atomic-operation cost) before past `shed_multiple` it starts
/// shedding — lowest-priority queries first.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate: admissions per second of virtual time.
    pub rate_per_sec: f64,
    /// Token-bucket capacity: the largest admissible burst.
    pub burst: f64,
    /// Target end-to-end completion budget per request (the SLO).
    pub slo: SimDuration,
    /// Predicted backlog makespan above `brownout_multiple × slo` degrades
    /// new photo requests to lo-res instead of full quality.
    pub brownout_multiple: f64,
    /// Predicted backlog makespan above `shed_multiple × slo` sheds new
    /// requests outright — except protected queries, which are degraded.
    pub shed_multiple: f64,
    /// Queries with ID below this are *protected*: in the shed band they
    /// are degraded rather than shed (priority is admission order — the
    /// oldest registered queries are the highest priority).
    pub protected_queries: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 10.0,
            burst: 20.0,
            slo: SimDuration::from_secs(10),
            brownout_multiple: 1.0,
            shed_multiple: 3.0,
            protected_queries: 0,
        }
    }
}

/// How a batch of concurrent action requests is distributed over devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Each request independently goes to its currently-cheapest available
    /// candidate (pure device-selection optimization, §2.3).
    MinCost,
    /// Batches of two or more requests are scheduled together with
    /// LERFA + SRFE (§5); singletons fall back to min-cost.
    Scheduled,
}

/// Tunable engine parameters.
///
/// The defaults correspond to the paper's deployment: synchronization and
/// probing on, scheduled dispatch, one-second sensor sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Master seed for all engine randomness.
    pub seed: u64,
    /// Enable the locking mechanism (§4). Turning this off reproduces the
    /// §6.2 interference failures.
    pub sync_enabled: bool,
    /// Enable the probing mechanism (§4). Turning it off skips availability
    /// checks and uses the last known status for costing.
    pub probe_enabled: bool,
    /// How often the engine samples the sensor table for events.
    pub sample_period: SimDuration,
    /// A request that cannot start executing within this window fails with
    /// "no device available" (events are transient; a late action is
    /// useless).
    pub request_timeout: SimDuration,
    /// Batch dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Extra execution attempts on *other* candidates after a device-level
    /// failure (connect timeout, busy rejection). Zero (the default, and the
    /// paper's behaviour) fails the request on first error.
    pub retry_failed: u32,
    /// When the local candidate set is exhausted (no probeable candidate at
    /// dispatch, or no surviving candidate after a crash), park the request
    /// in an escalation buffer for an external gateway instead of failing it
    /// terminally. Off by default — a standalone engine has no sibling to
    /// escalate to, so exhaustion stays a terminal `no_candidate`/`orphaned`
    /// outcome exactly as before.
    pub escalate_exhausted: bool,
    /// End-to-end deadline budget granted to every action request at
    /// admission: the request must *complete* by `created_at + deadline`.
    /// The scheduler sheds assignments predicted to finish past it, the
    /// executor cancels work at expiry (releasing the holder's lock), and
    /// gateways drop expired escalations — each a counted outcome, never a
    /// silent loss. `None` (the default) disables deadline enforcement
    /// entirely; the request lifecycle then matches the seed engine.
    pub deadline: Option<SimDuration>,
    /// Token-bucket admission control with brownout degradation. `None`
    /// (the default) admits everything, exactly as the seed engine did.
    pub admission: Option<AdmissionConfig>,
    /// Per-device circuit breakers over probe/action failures. `None` (the
    /// default) never quarantines a device.
    pub breaker: Option<BreakerConfig>,
    /// Enable the deterministic observability layer (`aorta-obs`): a
    /// metrics registry of counters, gauges and latency histograms plus
    /// structured span events, all stamped from the virtual clock.
    /// Recording is strictly write-only, so enabling it never changes
    /// engine behavior — but it is off by default so the seed experiments
    /// stay bit-for-bit unchanged *and* pay no recording cost.
    pub observability: bool,
    /// Detect events through the shared predicate index (vectorized batch
    /// pipeline, the default): distinct comparisons are evaluated once per
    /// scan batch and fanned out to the queries sharing them, so detection
    /// cost follows the number of *distinct* predicates rather than the
    /// number of registered AQs. When off, the engine runs the original
    /// tuple-at-a-time scalar loop — retained as the oracle for the
    /// differential-testing harness. Both paths produce byte-identical
    /// traces, counters and requests; the flag selects only the execution
    /// strategy, which is why vectorized can be the default without
    /// perturbing the committed seed artifacts.
    pub vectorized_detect: bool,
    /// Enable in-network operator pushdown: the placement pass compiles
    /// each query's maximal pushable prefix (indexable comparisons and
    /// windowed aggregate comparisons) into device-side programs, and
    /// samples whose every watching prefix evaluates cleanly false are
    /// *suppressed* — replaced on the wire by a one-byte marker instead of
    /// the full attribute reply. Suppression is sound by construction (a
    /// false prefix implies the engine's own short-circuit AND would
    /// reject the sample), so detections, traces and stats are
    /// byte-identical with the flag on or off; only the pushdown byte
    /// accounting ([`crate::PushdownStats`]) changes. Off by default so
    /// the committed seed artifacts stay bit-for-bit unchanged.
    pub pushdown: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 42,
            sync_enabled: true,
            probe_enabled: true,
            sample_period: SimDuration::from_secs(1),
            request_timeout: SimDuration::from_secs(30),
            dispatch: DispatchPolicy::Scheduled,
            retry_failed: 0,
            escalate_exhausted: false,
            deadline: None,
            admission: None,
            breaker: None,
            observability: false,
            vectorized_detect: true,
            pushdown: false,
        }
    }
}

impl EngineConfig {
    /// The default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }

    /// Disables synchronization (the §6.2 "without locking" arm).
    pub fn without_sync(mut self) -> Self {
        self.sync_enabled = false;
        self
    }

    /// Disables probing.
    pub fn without_probing(mut self) -> Self {
        self.probe_enabled = false;
        self
    }

    /// Sets the dispatch policy, builder style.
    pub fn with_dispatch(mut self, dispatch: DispatchPolicy) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Enables failover retries, builder style.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retry_failed = retries;
        self
    }

    /// Enables gateway escalation of exhausted requests, builder style.
    /// Used by `aorta-cluster`, whose gateway re-routes escalated requests
    /// to sibling shards.
    pub fn with_escalation(mut self) -> Self {
        self.escalate_exhausted = true;
        self
    }

    /// Grants every request an explicit end-to-end deadline budget,
    /// builder style.
    pub fn with_deadline(mut self, budget: SimDuration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Derives the deadline budget from the AQ trigger period: `periods`
    /// trigger-scan epochs (`sample_period`) per request. An action that
    /// has not completed within a few trigger periods is responding to an
    /// event that is no longer observable.
    pub fn with_trigger_deadline(mut self, periods: u32) -> Self {
        self.deadline = Some(self.sample_period * periods as u64);
        self
    }

    /// Enables token-bucket admission control and brownout, builder style.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Enables per-device circuit breakers, builder style.
    pub fn with_breakers(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Enables the deterministic observability layer, builder style.
    pub fn with_observability(mut self) -> Self {
        self.observability = true;
        self
    }

    /// Selects the original tuple-at-a-time scalar detection loop instead
    /// of the vectorized predicate-index pipeline — the differential-testing
    /// oracle configuration.
    pub fn with_scalar_detect(mut self) -> Self {
        self.vectorized_detect = false;
        self
    }

    /// Enables in-network operator pushdown, builder style.
    pub fn with_pushdown(mut self) -> Self {
        self.pushdown = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = EngineConfig::default();
        assert!(c.sync_enabled);
        assert!(c.probe_enabled);
        assert_eq!(c.dispatch, DispatchPolicy::Scheduled);
        assert_eq!(c.sample_period, SimDuration::from_secs(1));
    }

    #[test]
    fn builders_toggle_flags() {
        let c = EngineConfig::seeded(7).without_sync().without_probing();
        assert_eq!(c.seed, 7);
        assert!(!c.sync_enabled);
        assert!(!c.probe_enabled);
        let c = EngineConfig::default().with_dispatch(DispatchPolicy::MinCost);
        assert_eq!(c.dispatch, DispatchPolicy::MinCost);
    }

    #[test]
    fn overload_knobs_default_off() {
        let c = EngineConfig::default();
        assert_eq!(c.deadline, None);
        assert_eq!(c.admission, None);
        assert_eq!(c.breaker, None);
        assert!(!c.observability, "observability must be opt-in");
        assert!(EngineConfig::default().with_observability().observability);
    }

    #[test]
    fn vectorized_detection_is_default_with_a_scalar_oracle() {
        assert!(EngineConfig::default().vectorized_detect);
        assert!(
            !EngineConfig::default()
                .with_scalar_detect()
                .vectorized_detect
        );
    }

    #[test]
    fn pushdown_is_opt_in() {
        assert!(!EngineConfig::default().pushdown);
        assert!(EngineConfig::default().with_pushdown().pushdown);
    }

    #[test]
    fn trigger_deadline_derives_from_sample_period() {
        let c = EngineConfig::default().with_trigger_deadline(12);
        assert_eq!(c.deadline, Some(SimDuration::from_secs(12)));
        let c = EngineConfig::default().with_deadline(SimDuration::from_secs(7));
        assert_eq!(c.deadline, Some(SimDuration::from_secs(7)));
        let c = EngineConfig::default()
            .with_admission(AdmissionConfig::default())
            .with_breakers(aorta_net::BreakerConfig::default());
        assert!(c.admission.is_some() && c.breaker.is_some());
    }
}
