//! The [`Aorta`] facade: SQL entry point, registration, and catalog/device
//! access. The continuous-execution machinery lives in [`crate::exec`].

use std::collections::{BTreeMap, BTreeSet};

use aorta_data::Tuple;
use aorta_device::pushdown::{PushProgram, WindowBank};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
use aorta_net::{BreakerBank, BreakerState, DeviceRegistry, Prober};
use aorta_obs::{MetricsRegistry, SharedMetrics};
use aorta_sim::metrics::DurationStats;
use aorta_sim::{EventQueue, FaultPlan, LinkModel, SimRng, SimTime, TraceBuffer};
use aorta_sql::ast::{CreateAction, Select, Statement};
use aorta_wal::{WalHandle, WalRecord};

use crate::actions::{ActionDef, ActionHandler, ActionProfile, CustomHandler};
use crate::admission::TokenBucket;
use crate::catalog::Catalog;
use crate::exec::{EngineEvent, PushdownStats, RawStats};
use crate::expr::{eval_expr, eval_predicate, Env, EvalContext};
use crate::lock::LockManager;
use crate::pindex::PredicateIndex;
use crate::plan::AqPlan;
use crate::shared::SharedActionOperator;
use crate::{EngineConfig, EngineError};

/// What a successfully executed statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutput {
    /// `CREATE AQ` registered a continuous query with this ID.
    QueryRegistered(u32),
    /// `DROP AQ` removed the named query.
    QueryDropped,
    /// `CREATE ACTION` registered an action.
    ActionRegistered,
    /// A one-shot `SELECT` returned rows.
    Rows(Vec<Tuple>),
    /// `EXPLAIN` rendered a plan.
    Plan(String),
}

/// The Aorta pervasive query processor.
///
/// Owns the device registry (the communication layer's dynamic view), the
/// catalog, the lock manager, and the virtual clock. See the crate docs for
/// an end-to-end example.
pub struct Aorta {
    pub(crate) config: EngineConfig,
    pub(crate) registry: DeviceRegistry,
    pub(crate) catalog: Catalog,
    pub(crate) locks: LockManager,
    pub(crate) prober: Prober,
    pub(crate) rng: SimRng,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<EngineEvent>,
    pub(crate) operators: BTreeMap<String, SharedActionOperator>,
    /// Rising-edge state per (query, event-device): true while the event
    /// predicate currently holds, so one physical event fires one request.
    pub(crate) edge: BTreeMap<(u32, i64), bool>,
    /// (query, conjunct) pairs whose eval error has already been traced, so
    /// a permanently broken predicate emits one trace event, not one per
    /// tuple per epoch (the `eval_errors` counter still counts every one).
    pub(crate) eval_error_reported: BTreeSet<(u32, usize)>,
    /// The shared predicate index driving vectorized detection: interned
    /// distinct comparisons, attribute lanes, and query groups with their
    /// shared rising-edge state. Kept in lockstep with the catalog on
    /// `CREATE AQ` / `DROP AQ` regardless of the detection mode, so mode is
    /// purely a per-epoch execution choice.
    pub(crate) pindex: PredicateIndex,
    /// Per-(query, conjunct, source) sliding-window buffers backing
    /// `AGG(attr) OVER LAST n` conjuncts. Conceptually device-resident —
    /// the mote sees every sample it takes, shipped or suppressed, so
    /// windows advance on every scanned tuple. Excluded from
    /// [`state_digest`](Aorta::state_digest) for the same reason a mote's
    /// ADC buffer is: it is edge state that a recovered engine rebuilds by
    /// observing the next `n` samples, not coordinator state the WAL
    /// promises to reconstruct exactly.
    pub(crate) windows: WindowBank,
    /// The compiled device-side pushdown programs (the operator-placement
    /// pass output). Pure derived state — a deterministic function of the
    /// catalog and registry schemas — invalidated (`None`) on
    /// register/drop like `scan_kinds` and rebuilt lazily, so bulk
    /// registration of 10⁵⁺ AQs never pays a per-register recompile.
    pub(crate) placement: Option<PushProgram>,
    /// Pushdown byte accounting ([`crate::PushdownStats`]). Write-only
    /// bookkeeping, separate from `raw_stats` so the committed seed
    /// artifacts (which digest `EngineStats`' Debug rendering) stay
    /// byte-identical whether pushdown is on or off.
    pub(crate) push_stats: PushdownStats,
    /// Queries whose candidate join already traced a bad-device-id skip,
    /// so a device table that persistently reports unusable ids emits one
    /// trace line per query, not one per tuple per epoch (the
    /// `bad_device_ids` counter still counts every one).
    pub(crate) bad_id_reported: BTreeSet<u32>,
    /// Cached scan-kind order for the sampling epoch (first appearance over
    /// plans in catalog name order, event kind before device kind), so the
    /// steady-state epoch does not re-walk a large catalog. `None` = stale;
    /// invalidated on register/drop and rebuilt lazily by `handle_sample`.
    pub(crate) scan_kinds: Option<Vec<DeviceKind>>,
    pub(crate) raw_stats: RawStats,
    /// Execution trace for debugging and tests (ring buffer).
    pub(crate) trace: TraceBuffer,
    /// Injected fault schedule, interleaved with engine events by the clock.
    pub(crate) faults: FaultPlan<DeviceId>,
    /// Active loss bursts (extra per-message loss, summed while stacked).
    pub(crate) loss_stack: Vec<f64>,
    /// Active latency spikes (multiplicative factors on base latency).
    pub(crate) latency_stack: Vec<f64>,
    /// Per-kind link models as they were when faults were injected; bursts
    /// are applied on top of these, never on already-degraded links.
    pub(crate) baseline_links: BTreeMap<DeviceKind, LinkModel>,
    /// Custom handlers registered before their `CREATE ACTION` statement.
    staged_handlers: BTreeMap<String, CustomHandler>,
    /// Requests whose local candidate set is exhausted, parked for the
    /// cluster gateway (only fills when `escalate_exhausted` is set).
    pub(crate) escalated: Vec<crate::ActionRequest>,
    /// Per-device circuit breakers (`None` when the config leaves them off).
    pub(crate) breakers: Option<BreakerBank>,
    /// Token bucket pacing admissions (`None` without an admission config).
    pub(crate) admission_bucket: Option<TokenBucket>,
    /// Individual action-completion latencies, for tail quantiles; the
    /// running mean in `RawStats` is kept for cheap admission predictions.
    pub(crate) latency_samples: DurationStats,
    /// The deterministic observability registry (`None` unless
    /// `config.observability` — recording is write-only, so this never
    /// influences engine behavior).
    pub(crate) obs: Option<SharedMetrics>,
    /// Write-ahead log sink (`None` when durability is off). A separate
    /// channel from trace/stats/rng: attaching a WAL never perturbs the
    /// simulated run, so a logged run stays byte-identical to an unlogged
    /// one.
    pub(crate) wal: Option<WalHandle>,
    /// Set when a [`aorta_sim::FaultEvent::ProcessCrash`] halted this
    /// engine. A halted engine ignores further work; its in-memory state is
    /// garbage by definition (the process died) and recovery rebuilds a
    /// fresh engine from snapshot + WAL replay.
    pub(crate) halted: bool,
    /// Process-crash events to absorb without halting. Recovery grants one
    /// immunity per `CrashApplied` record in the replay suffix so a crash
    /// already in the log cannot halt the replaying engine a second time.
    pub(crate) crash_immunity: u32,
    /// Identity of the simulated host this incarnation runs on. Pure
    /// identity, not state: excluded from [`state_digest`](Aorta::state_digest)
    /// so a failed-over engine (new host, same replayed state) digests
    /// equal to the original.
    pub(crate) host: u32,
    /// Monotonically increasing incarnation epoch. The cluster bumps it at
    /// every failover; messages stamped with an older epoch are zombie
    /// traffic from a fenced-off incarnation. Identity, not state — see
    /// [`host`](field@Aorta::host).
    pub(crate) epoch: u64,
}

// Compile-time thread-safety audit: the cluster's parallel window runner
// shares engines immutably across worker threads while cloning (`Sync`) and
// moves the clones back across the join (`Send`). A future `Rc`/`RefCell`
// leaking into engine state fails this build, not the parallel runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Aorta>();
};

impl Aorta {
    /// An engine over an empty device registry.
    pub fn new(config: EngineConfig) -> Self {
        Aorta::with_registry(config, DeviceRegistry::new())
    }

    /// An engine over a [`PervasiveLab`] fixture.
    pub fn with_lab(config: EngineConfig, lab: PervasiveLab) -> Self {
        Aorta::with_registry(config, DeviceRegistry::from_lab(lab))
    }

    /// An engine over an explicit registry.
    pub fn with_registry(config: EngineConfig, registry: DeviceRegistry) -> Self {
        let mut rng = SimRng::seed(config.seed);
        let engine_rng = rng.fork(0xE16);
        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, EngineEvent::Sample);
        let obs = config.observability.then(SharedMetrics::new);
        let mut prober = Prober::new();
        let mut breakers = config.breaker.clone().map(BreakerBank::new);
        if let Some(m) = &obs {
            prober.set_metrics(m.clone());
            if let Some(bank) = &mut breakers {
                bank.set_metrics(m.clone());
            }
        }
        let admission_bucket = config.admission.as_ref().map(TokenBucket::new);
        Aorta {
            config,
            registry,
            catalog: Catalog::with_builtins(),
            locks: LockManager::new(),
            prober,
            rng: engine_rng,
            now: SimTime::ZERO,
            queue,
            operators: BTreeMap::new(),
            edge: BTreeMap::new(),
            eval_error_reported: BTreeSet::new(),
            pindex: PredicateIndex::new(),
            windows: WindowBank::new(),
            placement: None,
            push_stats: PushdownStats::default(),
            bad_id_reported: BTreeSet::new(),
            scan_kinds: None,
            raw_stats: RawStats::default(),
            trace: TraceBuffer::with_capacity(4096),
            faults: FaultPlan::new(),
            loss_stack: Vec::new(),
            latency_stack: Vec::new(),
            baseline_links: BTreeMap::new(),
            staged_handlers: BTreeMap::new(),
            escalated: Vec::new(),
            breakers,
            admission_bucket,
            latency_samples: DurationStats::new(),
            obs,
            wal: None,
            halted: false,
            crash_immunity: 0,
            host: 0,
            epoch: 1,
        }
    }

    // --- write-ahead logging & crash recovery --------------------------------

    /// Attaches a WAL sink: from here on every external input (command) and
    /// control-plane transition (effect) is appended to it. Logging is a
    /// separate channel from the simulation (no trace/stats/RNG use), so an
    /// attached WAL never changes the run's observable behavior.
    pub fn attach_wal(&mut self, wal: WalHandle) {
        self.wal = Some(wal);
    }

    /// Detaches the WAL sink, returning it (e.g. to switch a recovered
    /// engine from verify mode back to record mode).
    pub fn detach_wal(&mut self) -> Option<WalHandle> {
        self.wal.take()
    }

    /// The attached WAL sink, if any.
    pub fn wal(&self) -> Option<&WalHandle> {
        self.wal.as_ref()
    }

    /// Whether a process-crash fault has halted this engine. A crashed
    /// engine refuses further work until recovery replaces it.
    pub fn is_crashed(&self) -> bool {
        self.halted
    }

    /// Grants immunity against the next `n` process-crash events (used by
    /// recovery so crashes already in the log don't halt the replay).
    pub fn grant_crash_immunity(&mut self, n: u32) {
        self.crash_immunity += n;
    }

    // --- incarnation identity ------------------------------------------------

    /// The simulated host this incarnation runs on.
    pub fn host(&self) -> u32 {
        self.host
    }

    /// This incarnation's epoch (see [`set_identity`](Aorta::set_identity)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps this engine's incarnation identity: which host it runs on
    /// and at which epoch. Set by the cluster at construction and at every
    /// failover adoption; pure identity, never part of the state digest.
    pub fn set_identity(&mut self, host: u32, epoch: u64) {
        self.host = host;
        self.epoch = epoch;
    }

    /// Appends to the WAL when one is attached. The record is built lazily
    /// so the hot path pays nothing when durability is off.
    pub(crate) fn wal_emit(&self, record: impl FnOnce() -> WalRecord) {
        if let Some(wal) = &self.wal {
            wal.append(record());
        }
    }

    /// A deep copy of the engine for a crash-recovery snapshot.
    ///
    /// Everything is cloned by value except: the WAL handle (a snapshot is
    /// a passive image — it must not share, or re-log into, the live log),
    /// custom action handlers (`Arc`-shared code, not state), and the
    /// observability registry, which is deep-cloned and re-pointed into the
    /// prober/breakers so the image's metrics can diverge from the donor's.
    pub fn fork_snapshot(&self) -> Box<Aorta> {
        let obs = self.obs.as_ref().map(SharedMetrics::deep_clone);
        let mut prober = self.prober.clone();
        let mut breakers = self.breakers.clone();
        if let Some(m) = &obs {
            prober.set_metrics(m.clone());
            if let Some(bank) = &mut breakers {
                bank.set_metrics(m.clone());
            }
        }
        Box::new(Aorta {
            config: self.config.clone(),
            registry: self.registry.clone(),
            catalog: self.catalog.clone(),
            locks: self.locks.clone(),
            prober,
            rng: self.rng.clone(),
            now: self.now,
            queue: self.queue.clone(),
            operators: self.operators.clone(),
            edge: self.edge.clone(),
            eval_error_reported: self.eval_error_reported.clone(),
            pindex: self.pindex.clone(),
            windows: self.windows.clone(),
            placement: self.placement.clone(),
            push_stats: self.push_stats,
            bad_id_reported: self.bad_id_reported.clone(),
            scan_kinds: self.scan_kinds.clone(),
            raw_stats: self.raw_stats,
            trace: self.trace.clone(),
            faults: self.faults.clone(),
            loss_stack: self.loss_stack.clone(),
            latency_stack: self.latency_stack.clone(),
            baseline_links: self.baseline_links.clone(),
            staged_handlers: self.staged_handlers.clone(),
            escalated: self.escalated.clone(),
            breakers,
            admission_bucket: self.admission_bucket.clone(),
            latency_samples: self.latency_samples.clone(),
            obs,
            wal: None,
            halted: self.halted,
            crash_immunity: self.crash_immunity,
            host: self.host,
            epoch: self.epoch,
        })
    }

    /// A deterministic digest over the engine's dynamic state: virtual
    /// clock, counters, RNG state, trace, locks, edges, queue, operators.
    /// Two engines with equal digests produce identical futures — the
    /// equality recovery tests assert between a replayed engine and its
    /// uninterrupted reference.
    pub fn state_digest(&self) -> u64 {
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        fnv(&mut h, format!("{:?}", self.now).as_bytes());
        fnv(&mut h, format!("{:?}", self.raw_stats).as_bytes());
        fnv(&mut h, format!("{:?}", self.rng.state()).as_bytes());
        fnv(&mut h, self.trace.render().as_bytes());
        fnv(&mut h, format!("{:?}", self.locks).as_bytes());
        fnv(&mut h, format!("{:?}", self.edge).as_bytes());
        fnv(&mut h, format!("{:?}", self.escalated).as_bytes());
        fnv(&mut h, format!("{:?}", self.latency_samples).as_bytes());
        fnv(&mut h, format!("{:?}", self.loss_stack).as_bytes());
        fnv(&mut h, format!("{:?}", self.latency_stack).as_bytes());
        let queued: Vec<String> = self
            .queue
            .iter()
            .map(|(t, e)| format!("{t:?} {e:?}"))
            .collect();
        fnv(&mut h, format!("{queued:?}").as_bytes());
        for (name, op) in &self.operators {
            fnv(
                &mut h,
                format!("{name} {} {}", op.pending_len(), op.total_enqueued()).as_bytes(),
            );
        }
        fnv(&mut h, format!("{}", self.catalog.query_count()).as_bytes());
        h
    }

    /// Installs a fault schedule. As the clock advances, due faults are
    /// applied *before* any engine event at the same or a later instant:
    /// devices crash and recover, loss bursts and latency spikes degrade the
    /// per-kind links. Every injected fault is recorded in the trace.
    ///
    /// The current per-kind link models are snapshotted as the baseline that
    /// bursts degrade, so call this after any [`DeviceRegistry::set_link`]
    /// customization.
    pub fn inject_faults(&mut self, plan: FaultPlan<DeviceId>) {
        self.wal_emit(|| WalRecord::FaultsInjected {
            events: plan.iter().cloned().collect(),
        });
        self.baseline_links.clear();
        for kind in DeviceKind::ALL {
            self.baseline_links
                .insert(kind, self.registry.link(kind).clone());
        }
        self.faults = plan;
    }

    /// Requests admitted but not yet terminally resolved: `Execute` events
    /// still on the engine queue plus requests waiting in shared action
    /// operators for the next dispatch epoch.
    ///
    /// Together with the terminal counters in [`crate::EngineStats`] this
    /// accounts for every admitted request — nothing is silently lost.
    pub fn pending_requests(&self) -> u64 {
        let queued = self
            .queue
            .iter()
            .filter(|(_, e)| matches!(e, EngineEvent::Execute { .. }))
            .count() as u64;
        let waiting: u64 = self
            .operators
            .values()
            .map(|op| op.pending_len() as u64)
            .sum();
        queued + waiting
    }

    /// The engine's execution trace (probe timeouts, dispatch decisions,
    /// action failures), oldest first.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Disables tracing (zero overhead for long benchmark runs).
    pub fn disable_trace(&mut self) {
        self.trace = TraceBuffer::disabled();
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Individual action-completion latencies recorded so far (for tail
    /// quantiles — the mean alone hides overload).
    pub fn latency_stats(&self) -> DurationStats {
        self.latency_samples.clone()
    }

    /// Snapshot of the observability registry with the engine's terminal
    /// counters synced in, or `None` when `config.observability` is off.
    ///
    /// Live events (probes, breaker transitions, admission decisions,
    /// spans) are recorded as they happen; the aggregate [`crate::EngineStats`]
    /// counters are folded in here at snapshot time so the two views never
    /// double-count.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        let obs = self.obs.as_ref()?;
        let mut snap = obs.snapshot();
        self.stats().record_into(&mut snap);
        Some(snap)
    }

    /// The metrics snapshot rendered as deterministic JSON (`None` when
    /// observability is off).
    pub fn metrics_json(&self) -> Option<String> {
        self.metrics().map(|m| m.to_json())
    }

    /// The metrics snapshot in the Prometheus text exposition format
    /// (`None` when observability is off).
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.metrics().map(|m| m.to_prometheus())
    }

    /// Number of rising-edge entries currently tracked, in per-query units
    /// (one per live (query, event-source) pair). The vectorized path
    /// stores one edge map per *query group* and fans it out to members;
    /// this reports the per-query equivalent so soak tests can assert the
    /// state stays bounded across register/drop cycles in either mode.
    pub fn rising_edge_entries(&self) -> usize {
        self.edge.len() + self.pindex.edge_entries()
    }

    /// The shared predicate index (introspection: distinct comparison and
    /// query-group counts, used by tests and benchmarks to assert sharing).
    pub fn predicate_index(&self) -> &PredicateIndex {
        &self.pindex
    }

    /// Pushdown byte accounting accumulated so far. All-zero unless
    /// [`EngineConfig::pushdown`] is on.
    pub fn pushdown_stats(&self) -> PushdownStats {
        self.push_stats
    }

    /// The circuit-breaker state for `device`, when breakers are enabled.
    pub fn breaker_state(&self, device: DeviceId) -> Option<BreakerState> {
        self.breakers.as_ref().map(|b| b.state(device))
    }

    /// The breaker health score (EWMA of recent outcomes, 1.0 = perfect)
    /// for `device`, when breakers are enabled.
    pub fn breaker_health(&self, device: DeviceId) -> Option<f64> {
        self.breakers.as_ref().map(|b| b.health(device))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Shared access to the device registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// Mutable access to the device registry (join/leave devices).
    ///
    /// Membership changes made through this accessor bypass the WAL; on a
    /// WAL-attached engine use [`Aorta::migrate_out`] / [`Aorta::migrate_in`]
    /// for ownership transfers so recovery sees them.
    pub fn registry_mut(&mut self) -> &mut DeviceRegistry {
        &mut self.registry
    }

    /// Extracts `device` for migration to another shard, logging the
    /// departure — the WAL-aware counterpart of
    /// `registry_mut().extract(device)`.
    pub fn migrate_out(&mut self, device: DeviceId) -> Option<aorta_net::DeviceEntry> {
        self.wal_emit(|| WalRecord::MigrateOut { device });
        self.registry.extract(device)
    }

    /// Adopts a device entry migrated from another shard, logging the
    /// arrival. The adopted entry is a live device image no log record can
    /// reconstruct, so the cluster's WAL manager force-snapshots both sides
    /// immediately after each migration — replay never crosses a
    /// `MigrateIn` record (encountering one is a loud recovery error).
    pub fn migrate_in(&mut self, entry: aorta_net::DeviceEntry) -> DeviceId {
        let id = self.registry.adopt(entry);
        self.wal_emit(|| WalRecord::MigrateIn { device: id });
        id
    }

    /// The catalog of actions and registered queries.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The lock manager (introspection).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The shared action operator for an action name, if any query uses it.
    pub fn shared_operator(&self, action: &str) -> Option<&SharedActionOperator> {
        self.operators.get(action)
    }

    /// Stages the implementation for an upcoming `CREATE ACTION name(…)`
    /// statement — the in-process equivalent of the paper's pre-compiled
    /// `.dll` code block.
    pub fn register_handler(&mut self, name: impl Into<String>, handler: CustomHandler) {
        self.staged_handlers.insert(name.into(), handler);
    }

    /// Renders the registered continuous queries as a SQL script that,
    /// executed on a fresh engine (with the same actions registered),
    /// recreates the catalog — the administrator's backup/restore path.
    pub fn dump_queries(&self) -> String {
        let mut out = String::new();
        for plan in self.catalog.queries() {
            out.push_str(&format!("CREATE AQ {} AS SELECT ", plan.name));
            for (i, a) in plan.actions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{}({})",
                    a.action,
                    a.args
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            out.push_str(&format!(" FROM {} {}", plan.event_kind, plan.event_binding));
            let mut conjuncts: Vec<String> =
                plan.event_conjuncts.iter().map(|c| c.to_string()).collect();
            if let Some(d) = &plan.device {
                out.push_str(&format!(", {} {}", d.kind, d.binding));
                conjuncts.extend(d.conjuncts.iter().map(|c| c.to_string()));
            }
            if !conjuncts.is_empty() {
                out.push_str(" WHERE ");
                out.push_str(&conjuncts.join(" AND "));
            }
            out.push_str(";\n");
        }
        out
    }

    /// Parses, validates, plans and applies a batch of SQL statements.
    ///
    /// Returns one [`ExecOutput`] per statement; the whole batch fails on
    /// the first error.
    ///
    /// # Errors
    ///
    /// [`EngineError`] on syntax, validation, planning or catalog problems.
    pub fn execute_sql(&mut self, sql: &str) -> Result<Vec<ExecOutput>, EngineError> {
        let statements = aorta_sql::parse(sql)?;
        // Command-log the whole batch once parsing succeeds. Execution
        // errors are deterministic, so replaying the batch fails at the
        // same statement and leaves the same prefix applied.
        self.wal_emit(|| WalRecord::SqlExec {
            sql: sql.to_string(),
        });
        let mut out = Vec::with_capacity(statements.len());
        for stmt in statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<ExecOutput, EngineError> {
        self.catalog.validation_context().validate(&stmt)?;
        match stmt {
            Statement::CreateAction(ca) => {
                self.create_action(ca)?;
                Ok(ExecOutput::ActionRegistered)
            }
            Statement::CreateAq(aq) => {
                let plan = AqPlan::plan(&aq.name, &aq.select, &self.catalog)?;
                let id = self.register_query_plan(plan)?;
                Ok(ExecOutput::QueryRegistered(id))
            }
            Statement::DropAq(name) => {
                self.deregister_query(&name)?;
                Ok(ExecOutput::QueryDropped)
            }
            Statement::Select(select) => Ok(ExecOutput::Rows(self.run_select(&select)?)),
            Statement::Explain(inner) => match *inner {
                Statement::CreateAq(aq) => {
                    let plan = AqPlan::plan(&aq.name, &aq.select, &self.catalog)?;
                    Ok(ExecOutput::Plan(plan.to_string()))
                }
                Statement::Select(select) => {
                    match AqPlan::plan("adhoc", &select, &self.catalog) {
                        Ok(plan) => Ok(ExecOutput::Plan(plan.to_string())),
                        // A scalar SELECT has no action plan; describe scans.
                        Err(_) => Ok(ExecOutput::Plan(format!("Scan+Filter: {select}\n"))),
                    }
                }
                other => Ok(ExecOutput::Plan(other.to_string())),
            },
        }
    }

    /// Registers an already-planned continuous query directly, bypassing
    /// SQL parsing and statement validation — the bulk-registration path
    /// for workloads that stand up 10⁵–10⁶ AQs (the E10 benchmark, churn
    /// soak tests), where re-validating device catalogs per statement would
    /// dominate. The plan's conjuncts are interned into the shared
    /// predicate index exactly as `CREATE AQ` would.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when a query with the same name is already
    /// registered.
    pub fn register_query_plan(&mut self, plan: AqPlan) -> Result<u32, EngineError> {
        for a in &plan.actions {
            self.operators.entry(a.action.clone()).or_default();
        }
        let name = plan.name.clone();
        let id = self.catalog.register_query(plan)?;
        let registered = self.catalog.query(&name).expect("just registered");
        let schema = self.registry.schema(registered.event_kind);
        // Windowed plans carry per-source aggregate state the stateless
        // predicate index cannot represent; they detect through the scalar
        // walk (merged into the vectorized pass in catalog name order).
        if registered.windowed.is_empty() {
            self.pindex.register(registered, schema);
        }
        self.scan_kinds = None;
        self.placement = None;
        self.wal_emit(|| WalRecord::AqRegistered {
            query_id: id,
            name: name.clone(),
        });
        Ok(id)
    }

    /// Drops a registered continuous query by name, releasing its
    /// predicate-index entries and rising-edge state — the direct
    /// counterpart of [`Aorta::register_query_plan`] (and the
    /// implementation behind `DROP AQ`).
    ///
    /// # Errors
    ///
    /// [`EngineError`] when no query with that name is registered.
    pub fn deregister_query(&mut self, name: &str) -> Result<(), EngineError> {
        let dropped = self.catalog.drop_query(name)?;
        // GC the dropped query's rising-edge entries. Query IDs are
        // never reused, so these keys can never match again; without
        // eviction the map grows by one generation of entries per
        // register/drop cycle, forever. Entries for other queries
        // (including ones on currently-offline devices) must survive.
        self.edge.retain(|(q, _), _| *q != dropped.query_id);
        if dropped.windowed.is_empty() {
            self.pindex.unregister(&dropped);
        }
        self.windows.drop_query(dropped.query_id);
        self.scan_kinds = None;
        self.placement = None;
        self.wal_emit(|| WalRecord::AqDropped {
            query_id: dropped.query_id,
            name: name.to_string(),
        });
        Ok(())
    }

    fn create_action(&mut self, ca: CreateAction) -> Result<(), EngineError> {
        // The profile path selects a built-in template unless the user
        // staged XML under that name; the library path selects the staged
        // handler.
        let handler = match self.staged_handlers.remove(&ca.name) {
            Some(h) => ActionHandler::Custom(h),
            None => {
                return Err(EngineError::Catalog(format!(
                    "no handler registered for action '{}'; call register_handler() first \
                     (the in-process equivalent of the paper's pre-compiled library)",
                    ca.name
                )))
            }
        };
        // Infer the device kind from the profile attribute naming convention
        // (profiles/<kind>/…) or default to Sensor-less generic: use the
        // first parameter typed Location → Camera, else Phone for Str pairs.
        let profile = match &ca.profile {
            Some(path) if path.contains("camera") => ActionProfile::photo(),
            Some(path) if path.contains("phone") => ActionProfile::sendphoto(),
            Some(path) if path.contains("sensor") => ActionProfile::beep(),
            _ => ActionProfile::sendphoto(),
        };
        let def = ActionDef {
            name: ca.name,
            params: ca.params.iter().map(|(t, _)| *t).collect(),
            profile,
            handler,
        };
        self.catalog.register_action(def)
    }

    /// Runs a one-shot scalar SELECT: scans every FROM table once, filters,
    /// projects.
    fn run_select(&mut self, select: &Select) -> Result<Vec<Tuple>, EngineError> {
        // Scan each bound table through the communication layer.
        let mut scans: Vec<(String, DeviceKind, Vec<Tuple>)> = Vec::new();
        for t in &select.tables {
            let kind: DeviceKind = t.table.parse().map_err(EngineError::Planning)?;
            let tuples =
                aorta_net::ScanOperator::new(kind).run(&mut self.registry, self.now, &mut self.rng);
            scans.push((t.binding().to_string(), kind, tuples));
        }
        // Cross product with filtering (FROM lists are 1–2 tables here).
        let mut rows = Vec::new();
        let mut cursor = vec![0usize; scans.len()];
        'outer: loop {
            {
                let mut env = Env::new();
                let schemas: Vec<_> = scans
                    .iter()
                    .map(|(b, k, _)| (b.clone(), self.registry.schema(*k).clone()))
                    .collect();
                for (i, (_, _, tuples)) in scans.iter().enumerate() {
                    if tuples.is_empty() {
                        break 'outer;
                    }
                    env = env.bind(&schemas[i].0, &schemas[i].1, &tuples[cursor[i]]);
                }
                let ctx = EvalContext {
                    registry: &self.registry,
                };
                let keep = match &select.predicate {
                    Some(p) => eval_predicate(p, &env, &ctx)?,
                    None => true,
                };
                if keep {
                    let mut values = Vec::with_capacity(select.projections.len());
                    for p in &select.projections {
                        values.push(eval_expr(p, &env, &ctx)?);
                    }
                    rows.push(Tuple::new(values));
                }
            }
            // Advance the cross-product cursor.
            let mut i = scans.len();
            loop {
                if i == 0 {
                    break 'outer;
                }
                i -= 1;
                cursor[i] += 1;
                if cursor[i] < scans[i].2.len() {
                    break;
                }
                cursor[i] = 0;
            }
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineError;
    use aorta_data::Value;
    use aorta_sim::SimDuration;

    fn quiet_lab() -> PervasiveLab {
        PervasiveLab::standard()
    }

    fn eventful_lab() -> PervasiveLab {
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
    }

    const SNAPSHOT: &str = r#"CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

    #[test]
    fn registers_and_drops_queries() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let out = aorta.execute_sql(SNAPSHOT).unwrap();
        assert_eq!(out, vec![ExecOutput::QueryRegistered(0)]);
        assert_eq!(aorta.catalog().query_count(), 1);
        assert!(aorta.shared_operator("photo").is_some());
        let out = aorta.execute_sql("DROP AQ snapshot").unwrap();
        assert_eq!(out, vec![ExecOutput::QueryDropped]);
        assert_eq!(aorta.catalog().query_count(), 0);
        // Dropping twice errors.
        assert!(matches!(
            aorta.execute_sql("DROP AQ snapshot"),
            Err(EngineError::Catalog(_))
        ));
    }

    #[test]
    fn validation_errors_surface() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let err = aorta
            .execute_sql("SELECT nothing FROM toaster")
            .unwrap_err();
        assert!(err.to_string().contains("unknown table"), "{err}");
    }

    #[test]
    fn snapshot_query_takes_photos_on_events() {
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(7), eventful_lab());
        aorta.execute_sql(SNAPSHOT).unwrap();
        aorta.run_for(SimDuration::from_mins(3));
        let stats = aorta.stats();
        assert!(stats.events_detected >= 3, "{stats:?}");
        assert!(stats.requests >= 3, "{stats:?}");
        assert!(stats.executed >= 2, "{stats:?}");
        assert!(stats.photos_ok >= 2, "{stats:?}");
        // With sync on, no interference outcomes.
        assert_eq!(stats.photos_wrong, 0, "{stats:?}");
    }

    #[test]
    fn one_shot_select_returns_rows() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let out = aorta
            .execute_sql("SELECT s.id, s.loc FROM sensor s WHERE s.id < 3")
            .unwrap();
        let ExecOutput::Rows(rows) = &out[0] else {
            panic!("expected rows");
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), Some(&Value::Int(0)));
        assert!(matches!(rows[0].get(1), Some(Value::Location(_))));
    }

    #[test]
    fn cross_product_select_with_coverage() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let out = aorta
            .execute_sql("SELECT s.id, c.id FROM sensor s, camera c WHERE coverage(c.id, s.loc)")
            .unwrap();
        let ExecOutput::Rows(rows) = &out[0] else {
            panic!("expected rows");
        };
        // Every mote is covered by at least one camera (§6.1),
        // so there are at least 10 qualifying pairs.
        assert!(rows.len() >= 10, "got {}", rows.len());
    }

    #[test]
    fn explain_shows_action_plan() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let out = aorta
            .execute_sql(&format!("EXPLAIN {}", &SNAPSHOT[10..])) // strip CREATE AQ? no — EXPLAIN CREATE AQ
            .unwrap_or_else(|_| {
                aorta
                    .execute_sql(
                        r#"EXPLAIN SELECT photo(c.ip, s.loc, "d")
                           FROM sensor s, camera c WHERE s.accel_x > 500"#,
                    )
                    .unwrap()
            });
        let ExecOutput::Plan(text) = &out[0] else {
            panic!("expected plan");
        };
        assert!(text.contains("ActionOp photo"), "{text}");
    }

    #[test]
    fn create_action_requires_staged_handler() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        let err = aorta
            .execute_sql(r#"CREATE ACTION mystery(Int x) AS "lib/mystery.dll""#)
            .unwrap_err();
        assert!(err.to_string().contains("register_handler"), "{err}");
    }

    #[test]
    fn custom_action_end_to_end() {
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(9), eventful_lab());
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits2 = hits.clone();
        aorta.register_handler(
            "record_event",
            std::sync::Arc::new(move |_reg, _dev, args, now, _rng| {
                assert!(!args.is_empty());
                hits2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(now + SimDuration::from_millis(10))
            }),
        );
        aorta
            .execute_sql(
                r#"CREATE ACTION record_event(Int sensor_id) AS "lib/record.dll"
                   PROFILE "profiles/sensor/record.xml""#,
            )
            .unwrap();
        aorta
            .execute_sql(
                r#"CREATE AQ recorder AS
                   SELECT record_event(s.id)
                   FROM sensor t, sensor s
                   WHERE s.accel_x > 500"#,
            )
            .unwrap();
        aorta.run_for(SimDuration::from_mins(2));
        assert!(
            hits.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "custom handler never ran"
        );
    }

    #[test]
    fn sendphoto_delivers_mms() {
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(11), eventful_lab());
        aorta
            .execute_sql(
                r#"CREATE AQ notify AS
                   SELECT sendphoto(p.number, "photos/admin/latest.jpg")
                   FROM sensor s, phone p
                   WHERE s.accel_x > 500"#,
            )
            .unwrap();
        aorta.run_for(SimDuration::from_mins(2));
        let stats = aorta.stats();
        assert!(stats.messages_delivered >= 1, "{stats:?}");
        let phone = aorta
            .registry()
            .get(aorta_device::DeviceId::phone(0))
            .unwrap()
            .sim
            .as_phone()
            .unwrap();
        assert!(!phone.inbox().is_empty());
        assert!(phone.inbox()[0].body.contains("latest.jpg"));
    }

    #[test]
    fn clock_advances_with_run_for() {
        let mut aorta = Aorta::with_lab(EngineConfig::default(), quiet_lab());
        assert_eq!(aorta.now(), SimTime::ZERO);
        aorta.run_for(SimDuration::from_secs(90));
        assert_eq!(aorta.now(), SimTime::ZERO + SimDuration::from_secs(90));
    }
}
