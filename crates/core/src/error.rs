//! Engine error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the engine's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL lexing/parsing/validation failed.
    Sql(aorta_sql::SqlError),
    /// The statement is valid SQL but not plannable (e.g. no event table).
    Planning(String),
    /// A name collision or missing registration in the catalog.
    Catalog(String),
    /// Expression evaluation failed at runtime.
    Eval(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Planning(m) => write!(f, "planning error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aorta_sql::SqlError> for EngineError {
    fn from(e: aorta_sql::SqlError) -> Self {
        EngineError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_lowercase_messages() {
        let e = EngineError::Planning("query has no event table".into());
        assert_eq!(e.to_string(), "planning error: query has no event table");
        let c = EngineError::Catalog("action 'photo' already registered".into());
        assert!(c.to_string().contains("already registered"));
    }

    #[test]
    fn wraps_sql_errors_with_source() {
        let sql = aorta_sql::SqlError::new(1, 2, "boom");
        let e: EngineError = sql.clone().into();
        assert_eq!(e.to_string(), sql.to_string());
        assert!(Error::source(&e).is_some());
    }
}
