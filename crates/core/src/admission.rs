//! Token-bucket admission pacing (half of the overload-safe lifecycle; the
//! other half — backlog-makespan brownout — lives in the executor, which
//! owns the counters the prediction needs).
//!
//! Integer micro-token arithmetic on the virtual clock: refills are exact
//! and deterministic, never subject to float drift across platforms.

use aorta_sim::SimTime;

use crate::config::AdmissionConfig;

/// Tokens are tracked in millionths so fractional refill rates stay exact
/// enough over any realistic run (one micro-token per microsecond at
/// `rate_per_sec = 1.0`).
const TOKEN_SCALE: f64 = 1e6;

/// A deterministic token bucket on virtual time.
#[derive(Debug, Clone)]
pub(crate) struct TokenBucket {
    capacity_e6: u64,
    tokens_e6: u64,
    rate_e6_per_sec: u64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A full bucket sized from the admission config.
    pub(crate) fn new(config: &AdmissionConfig) -> Self {
        let capacity_e6 = (config.burst.max(1.0) * TOKEN_SCALE) as u64;
        TokenBucket {
            capacity_e6,
            tokens_e6: capacity_e6,
            rate_e6_per_sec: (config.rate_per_sec.max(0.0) * TOKEN_SCALE) as u64,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed_us = now.saturating_duration_since(self.last_refill).as_micros();
        if elapsed_us == 0 {
            return;
        }
        // rate is tokens×1e6 per 1e6 µs, so the units cancel exactly.
        let gained = elapsed_us.saturating_mul(self.rate_e6_per_sec) / 1_000_000;
        self.tokens_e6 = (self.tokens_e6 + gained).min(self.capacity_e6);
        self.last_refill = now;
    }

    /// Current token level in millionths as of `now` — exported as the
    /// `aorta_admission_tokens_e6` gauge when observability is on.
    ///
    /// A *pure* read: it computes the refilled level without committing the
    /// refill. Committing would move `last_refill`, and because refill gains
    /// floor-divide, splitting one elapsed window into two can lose a
    /// micro-token — a gauge read must never be able to change admission.
    pub(crate) fn tokens_e6(&self, now: SimTime) -> u64 {
        let elapsed_us = now.saturating_duration_since(self.last_refill).as_micros();
        let gained = elapsed_us.saturating_mul(self.rate_e6_per_sec) / 1_000_000;
        (self.tokens_e6 + gained).min(self.capacity_e6)
    }

    /// Takes one admission token; `false` means the bucket is dry and the
    /// request must be shed.
    pub(crate) fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens_e6 >= TOKEN_SCALE as u64 {
            self.tokens_e6 -= TOKEN_SCALE as u64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::SimDuration;

    fn config(rate: f64, burst: f64) -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: rate,
            burst,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn burst_drains_then_refills_at_rate() {
        let mut bucket = TokenBucket::new(&config(2.0, 3.0));
        let t0 = SimTime::ZERO;
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst capacity is 3");
        // 2 tokens/sec: after 500ms exactly one token has accrued.
        let t1 = t0 + SimDuration::from_millis(500);
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut bucket = TokenBucket::new(&config(100.0, 2.0));
        let t0 = SimTime::ZERO;
        assert!(bucket.try_take(t0));
        // An hour later the bucket holds capacity, not rate×3600.
        let t1 = t0 + SimDuration::from_mins(60);
        assert!(bucket.try_take(t1));
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
    }

    #[test]
    fn token_gauge_reads_do_not_consume() {
        let mut bucket = TokenBucket::new(&config(1.0, 2.0));
        let t0 = SimTime::ZERO;
        assert_eq!(bucket.tokens_e6(t0), 2_000_000);
        assert_eq!(bucket.tokens_e6(t0), 2_000_000, "gauge read is idempotent");
        assert!(bucket.try_take(t0));
        assert_eq!(bucket.tokens_e6(t0), 1_000_000);
    }

    #[test]
    fn fractional_rates_accumulate_exactly() {
        let mut bucket = TokenBucket::new(&config(0.5, 1.0));
        let t0 = SimTime::ZERO;
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0 + SimDuration::from_secs(1)));
        assert!(bucket.try_take(t0 + SimDuration::from_secs(2)));
    }
}
