//! Shared action operators (§2.3).
//!
//! "We make concurrent queries that have the same embedded action share a
//! single action operator in their query plans. We add the query ID to the
//! input tuples … Such action operator sharing saves system resources and
//! facilitates group optimization of actions."
//!
//! One [`SharedActionOperator`] exists per action *name*; every query whose
//! plan embeds that action feeds its requests through it. The operator is
//! the batching point: all requests pending in one dispatch epoch are handed
//! to the optimizer together, which is what enables the §5 workload
//! scheduling.

use std::collections::BTreeMap;

use aorta_data::Tuple;
use aorta_device::{DeviceId, DeviceKind};
use aorta_sim::SimTime;
use aorta_sql::ast::Expr;

/// One instantiated action request — "the request from a query for the
/// execution of an action with instantiated input parameter values" (§5).
///
/// The triggering event tuple rides along (tagged with the query ID, per
/// §2.3) so that argument expressions referencing the event binding can be
/// evaluated once the optimizer has selected a device; each candidate
/// carries its scan tuple for the device-side arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRequest {
    /// The query that produced the request (the tuple's tag).
    pub query_id: u32,
    /// Action name.
    pub action: String,
    /// The event tuple that fired.
    pub event_tuple: Tuple,
    /// Binding name of the event table in the query (`s`).
    pub event_binding: String,
    /// The event table's device kind.
    pub event_kind: DeviceKind,
    /// Binding name and kind of the device table, when the plan has one.
    pub device_binding: Option<(String, DeviceKind)>,
    /// The action call's argument expressions (evaluated per selected
    /// device at execution).
    pub args: Vec<Expr>,
    /// Candidate devices with their scan tuples, from the candidate filter.
    pub candidates: Vec<(DeviceId, Tuple)>,
    /// When the triggering event was detected.
    pub created_at: SimTime,
    /// Absolute virtual-time deadline: the action must *complete* by this
    /// instant or the work is worthless (the event is gone). Rides with the
    /// request across retries, failovers and gateway escalations — a reroute
    /// carries the remaining budget, it never resets it.
    /// [`SimTime::MAX`] means unbounded (deadline enforcement disabled).
    pub deadline: SimTime,
    /// Brownout flag: admission control degraded this request to reduced
    /// quality (e.g. a lo-res photo at lower atomic-operation cost). A
    /// degraded completion counts in `degraded`, not `executed`.
    pub degraded: bool,
    /// How many times this request has already failed and been re-dispatched.
    pub attempts: u32,
    /// How many times a cluster gateway has re-routed this request to a
    /// sibling shard. Caps reroute loops: the gateway drops a request once
    /// it has visited every shard. Always zero on a standalone engine.
    pub hops: u32,
}

/// The per-action-name shared operator: a request accumulator with
/// statistics.
#[derive(Debug, Clone, Default)]
pub struct SharedActionOperator {
    pending: Vec<ActionRequest>,
    /// Which queries share this operator (for introspection).
    subscribers: BTreeMap<u32, u64>,
    total_enqueued: u64,
}

impl SharedActionOperator {
    /// An empty operator.
    pub fn new() -> Self {
        SharedActionOperator::default()
    }

    /// Enqueues one request.
    pub fn push(&mut self, request: ActionRequest) {
        *self.subscribers.entry(request.query_id).or_insert(0) += 1;
        self.total_enqueued += 1;
        self.pending.push(request);
    }

    /// Drains every pending request for batch dispatch.
    pub fn drain(&mut self) -> Vec<ActionRequest> {
        std::mem::take(&mut self.pending)
    }

    /// Requests currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Distinct queries that have fed this operator.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Requests enqueued over the operator's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Per-query request counts (query ID → requests), for introspection.
    pub fn per_query_counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.subscribers.iter().map(|(&q, &n)| (q, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(query_id: u32) -> ActionRequest {
        ActionRequest {
            query_id,
            action: "photo".into(),
            event_tuple: Tuple::new(vec![]).tagged(query_id),
            event_binding: "s".into(),
            event_kind: DeviceKind::Sensor,
            device_binding: Some(("c".into(), DeviceKind::Camera)),
            args: Vec::new(),
            candidates: vec![
                (DeviceId::camera(0), Tuple::new(vec![])),
                (DeviceId::camera(1), Tuple::new(vec![])),
            ],
            created_at: SimTime::ZERO,
            deadline: SimTime::MAX,
            degraded: false,
            attempts: 0,
            hops: 0,
        }
    }

    #[test]
    fn batches_requests_from_multiple_queries() {
        let mut op = SharedActionOperator::new();
        op.push(req(1));
        op.push(req(2));
        op.push(req(1));
        assert_eq!(op.pending_len(), 3);
        assert_eq!(op.subscriber_count(), 2);
        let batch = op.drain();
        assert_eq!(batch.len(), 3);
        assert_eq!(op.pending_len(), 0);
        assert_eq!(op.total_enqueued(), 3);
        // Query tags survive into the batch — the operator knows which
        // tuples are for which query.
        assert_eq!(batch[0].query_id, 1);
        assert_eq!(batch[1].query_id, 2);
    }

    #[test]
    fn per_query_counts_accumulate() {
        let mut op = SharedActionOperator::new();
        for _ in 0..3 {
            op.push(req(7));
        }
        op.push(req(9));
        let counts: Vec<(u32, u64)> = op.per_query_counts().collect();
        assert_eq!(counts, vec![(7, 3), (9, 1)]);
    }

    #[test]
    fn drain_on_empty_is_empty() {
        let mut op = SharedActionOperator::new();
        assert!(op.drain().is_empty());
    }
}
