//! Actions and action profiles (§2.2, §2.3).
//!
//! An action is a "system built-in or user-defined function that operates
//! devices". Its **action profile** "specifies the composition of an action
//! in terms of the sequential and/or parallel execution of a number of
//! atomic operations" and drives the cost model. Profiles are XML files,
//! like everything the administrator registers.

use std::fmt;
use std::sync::Arc;

use aorta_data::{Value, ValueType};
use aorta_device::{DeviceId, DeviceKind};
use aorta_net::DeviceRegistry;
use aorta_sim::{SimRng, SimTime};
use aorta_xml::{Document, Element, Node};

/// How many travel units an atomic operation consumes in a given execution
/// context (the physical-status dependence of the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitsSpec {
    /// One invocation of a fixed-cost operation.
    One,
    /// Degrees of pan travel from the current to the target head position.
    PanDelta,
    /// Degrees of tilt travel.
    TiltDelta,
    /// Normalized zoom travel.
    ZoomDelta,
    /// Radio hops to the device (sensor depth).
    DepthHops,
}

impl UnitsSpec {
    fn as_str(self) -> &'static str {
        match self {
            UnitsSpec::One => "one",
            UnitsSpec::PanDelta => "pan_delta",
            UnitsSpec::TiltDelta => "tilt_delta",
            UnitsSpec::ZoomDelta => "zoom_delta",
            UnitsSpec::DepthHops => "depth_hops",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "one" => Ok(UnitsSpec::One),
            "pan_delta" => Ok(UnitsSpec::PanDelta),
            "tilt_delta" => Ok(UnitsSpec::TiltDelta),
            "zoom_delta" => Ok(UnitsSpec::ZoomDelta),
            "depth_hops" => Ok(UnitsSpec::DepthHops),
            other => Err(format!("unknown units spec '{other}'")),
        }
    }
}

/// A node of the action-profile composition tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileNode {
    /// One atomic operation, looked up in the device type's
    /// `atomic_operation_cost.xml` table.
    Op {
        /// Atomic operation name.
        name: String,
        /// Travel units the operation consumes.
        units: UnitsSpec,
    },
    /// Children execute one after another (costs add).
    Seq(Vec<ProfileNode>),
    /// Children execute in parallel (cost is the maximum).
    Par(Vec<ProfileNode>),
}

/// An action profile: the composition tree plus the device kind it targets.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionProfile {
    /// The device kind the action operates.
    pub kind: DeviceKind,
    /// The composition tree.
    pub root: ProfileNode,
}

impl ActionProfile {
    /// The built-in `photo()` profile: move all three head axes in parallel,
    /// then capture a medium photo — the §2.3 example of status-dependent
    /// cost.
    pub fn photo() -> Self {
        ActionProfile {
            kind: DeviceKind::Camera,
            root: ProfileNode::Seq(vec![
                ProfileNode::Par(vec![
                    ProfileNode::Op {
                        name: "move_head_pan".into(),
                        units: UnitsSpec::PanDelta,
                    },
                    ProfileNode::Op {
                        name: "move_head_tilt".into(),
                        units: UnitsSpec::TiltDelta,
                    },
                    ProfileNode::Op {
                        name: "zoom".into(),
                        units: UnitsSpec::ZoomDelta,
                    },
                ]),
                ProfileNode::Op {
                    name: "capture_medium".into(),
                    units: UnitsSpec::One,
                },
            ]),
        }
    }

    /// The brownout variant of [`ActionProfile::photo`]: identical head
    /// movement, but a small capture at the catalog's reduced
    /// atomic-operation cost. Admission control substitutes this profile
    /// when costing a degraded request.
    pub fn photo_lo_res() -> Self {
        ActionProfile {
            kind: DeviceKind::Camera,
            root: ProfileNode::Seq(vec![
                ProfileNode::Par(vec![
                    ProfileNode::Op {
                        name: "move_head_pan".into(),
                        units: UnitsSpec::PanDelta,
                    },
                    ProfileNode::Op {
                        name: "move_head_tilt".into(),
                        units: UnitsSpec::TiltDelta,
                    },
                    ProfileNode::Op {
                        name: "zoom".into(),
                        units: UnitsSpec::ZoomDelta,
                    },
                ]),
                ProfileNode::Op {
                    name: "capture_small".into(),
                    units: UnitsSpec::One,
                },
            ]),
        }
    }

    /// The built-in `sendphoto()` profile: connect to the phone, deliver an
    /// MMS.
    pub fn sendphoto() -> Self {
        ActionProfile {
            kind: DeviceKind::Phone,
            root: ProfileNode::Seq(vec![
                ProfileNode::Op {
                    name: "connect".into(),
                    units: UnitsSpec::One,
                },
                ProfileNode::Op {
                    name: "receive_mms".into(),
                    units: UnitsSpec::One,
                },
            ]),
        }
    }

    /// The built-in `beep()` profile: reach the mote over its radio path,
    /// then beep.
    pub fn beep() -> Self {
        ActionProfile {
            kind: DeviceKind::Sensor,
            root: ProfileNode::Seq(vec![
                ProfileNode::Op {
                    name: "connect_hop".into(),
                    units: UnitsSpec::DepthHops,
                },
                ProfileNode::Op {
                    name: "beep".into(),
                    units: UnitsSpec::One,
                },
            ]),
        }
    }

    /// Serializes to the profile XML format.
    pub fn to_xml(&self) -> String {
        fn node_to_el(n: &ProfileNode) -> Element {
            match n {
                ProfileNode::Op { name, units } => Element::new("op")
                    .with_attr("name", name.clone())
                    .with_attr("units", units.as_str()),
                ProfileNode::Seq(children) => {
                    let mut e = Element::new("seq");
                    for c in children {
                        e.push_child(Node::Element(node_to_el(c)));
                    }
                    e
                }
                ProfileNode::Par(children) => {
                    let mut e = Element::new("par");
                    for c in children {
                        e.push_child(Node::Element(node_to_el(c)));
                    }
                    e
                }
            }
        }
        let root = Element::new("action_profile")
            .with_attr("device", self.kind.to_string())
            .with_child(node_to_el(&self.root));
        Document::new(root).to_pretty_string()
    }

    /// Parses the profile XML format.
    ///
    /// # Errors
    ///
    /// Returns a message on syntax errors or unknown elements/attributes.
    pub fn from_xml(xml: &str) -> Result<ActionProfile, String> {
        fn el_to_node(e: &Element) -> Result<ProfileNode, String> {
            match e.name() {
                "op" => Ok(ProfileNode::Op {
                    name: e
                        .attr("name")
                        .ok_or("an <op> is missing its 'name'")?
                        .to_string(),
                    units: UnitsSpec::parse(e.attr("units").unwrap_or("one"))?,
                }),
                "seq" => Ok(ProfileNode::Seq(
                    e.children().map(el_to_node).collect::<Result<_, _>>()?,
                )),
                "par" => Ok(ProfileNode::Par(
                    e.children().map(el_to_node).collect::<Result<_, _>>()?,
                )),
                other => Err(format!("unknown profile element <{other}>")),
            }
        }
        let doc = Document::parse(xml).map_err(|e| e.to_string())?;
        let root = doc.root();
        if root.name() != "action_profile" {
            return Err(format!(
                "expected <action_profile>, found <{}>",
                root.name()
            ));
        }
        let kind: DeviceKind = root
            .attr("device")
            .ok_or("missing 'device' attribute")?
            .parse()?;
        let inner = root
            .children()
            .next()
            .ok_or("profile has no composition tree")?;
        Ok(ActionProfile {
            kind,
            root: el_to_node(inner)?,
        })
    }
}

/// A user-supplied action implementation: given the registry, the selected
/// device, the evaluated arguments and the current virtual time, perform the
/// action and return its completion time.
pub type CustomHandler = Arc<
    dyn Fn(&mut DeviceRegistry, DeviceId, &[Value], SimTime, &mut SimRng) -> Result<SimTime, String>
        + Send
        + Sync,
>;

/// How an action executes on its selected device.
#[derive(Clone)]
pub enum ActionHandler {
    /// The built-in `photo(camera_ip, location, directory)`.
    Photo,
    /// The built-in `sendphoto(phone_no, photo_pathname)`.
    SendPhoto,
    /// The built-in `beep(sensor_id)`.
    Beep,
    /// A user-defined action (the paper's pre-compiled `.dll` code block,
    /// here a Rust closure registered in-process).
    Custom(CustomHandler),
}

impl fmt::Debug for ActionHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActionHandler::Photo => "Photo",
            ActionHandler::SendPhoto => "SendPhoto",
            ActionHandler::Beep => "Beep",
            ActionHandler::Custom(_) => "Custom(..)",
        };
        write!(f, "ActionHandler::{name}")
    }
}

/// A registered action: name, typed parameters, profile, handler.
#[derive(Debug, Clone)]
pub struct ActionDef {
    /// Action name (`photo`, `sendphoto`, …).
    pub name: String,
    /// Parameter types, in order.
    pub params: Vec<ValueType>,
    /// The cost profile.
    pub profile: ActionProfile,
    /// The implementation.
    pub handler: ActionHandler,
}

impl ActionDef {
    /// The built-in `photo(camera_ip, location, directory)` action of the
    /// paper's example query.
    pub fn builtin_photo() -> Self {
        ActionDef {
            name: "photo".into(),
            params: vec![ValueType::Str, ValueType::Location, ValueType::Str],
            profile: ActionProfile::photo(),
            handler: ActionHandler::Photo,
        }
    }

    /// The built-in `sendphoto(phone_no, photo_pathname)` action (§2.2).
    pub fn builtin_sendphoto() -> Self {
        ActionDef {
            name: "sendphoto".into(),
            params: vec![ValueType::Str, ValueType::Str],
            profile: ActionProfile::sendphoto(),
            handler: ActionHandler::SendPhoto,
        }
    }

    /// The built-in `beep(sensor_id)` action.
    pub fn builtin_beep() -> Self {
        ActionDef {
            name: "beep".into(),
            params: vec![ValueType::Int],
            profile: ActionProfile::beep(),
            handler: ActionHandler::Beep,
        }
    }

    /// The device kind this action operates.
    pub fn kind(&self) -> DeviceKind {
        self.profile.kind
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_target_right_kinds() {
        assert_eq!(ActionDef::builtin_photo().kind(), DeviceKind::Camera);
        assert_eq!(ActionDef::builtin_sendphoto().kind(), DeviceKind::Phone);
        assert_eq!(ActionDef::builtin_beep().kind(), DeviceKind::Sensor);
        assert_eq!(ActionDef::builtin_photo().arity(), 3);
    }

    #[test]
    fn profile_xml_round_trip() {
        for p in [
            ActionProfile::photo(),
            ActionProfile::sendphoto(),
            ActionProfile::beep(),
        ] {
            let xml = p.to_xml();
            let back = ActionProfile::from_xml(&xml).unwrap();
            assert_eq!(back, p, "{xml}");
        }
    }

    #[test]
    fn photo_profile_is_par_then_capture() {
        let p = ActionProfile::photo();
        let ProfileNode::Seq(steps) = &p.root else {
            panic!("photo profile should be a Seq");
        };
        assert!(matches!(steps[0], ProfileNode::Par(_)));
        assert!(matches!(
            &steps[1],
            ProfileNode::Op { name, .. } if name == "capture_medium"
        ));
    }

    #[test]
    fn lo_res_profile_swaps_only_the_capture_op() {
        let hi = ActionProfile::photo();
        let lo = ActionProfile::photo_lo_res();
        let (ProfileNode::Seq(hi_steps), ProfileNode::Seq(lo_steps)) = (&hi.root, &lo.root) else {
            panic!("photo profiles should be Seqs");
        };
        assert_eq!(hi_steps[0], lo_steps[0], "movement phase must be identical");
        assert!(matches!(
            &lo_steps[1],
            ProfileNode::Op { name, .. } if name == "capture_small"
        ));
    }

    #[test]
    fn profile_xml_rejects_malformed() {
        assert!(ActionProfile::from_xml("<wrong/>").is_err());
        assert!(ActionProfile::from_xml(r#"<action_profile device="camera"/>"#).is_err());
        assert!(ActionProfile::from_xml(
            r#"<action_profile device="camera"><widget/></action_profile>"#
        )
        .is_err());
        assert!(ActionProfile::from_xml(
            r#"<action_profile device="camera"><op name="x" units="furlongs"/></action_profile>"#
        )
        .is_err());
    }

    #[test]
    fn handler_debug_hides_closure() {
        let h = ActionHandler::Custom(Arc::new(|_, _, _, now, _| Ok(now)));
        assert_eq!(format!("{h:?}"), "ActionHandler::Custom(..)");
    }
}
