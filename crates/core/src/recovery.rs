//! Deterministic crash recovery: genesis specification, request wire
//! conversion, and the WAL replay driver.
//!
//! The engine is deterministic between external inputs, so the WAL logs
//! *commands* (SQL batches, fault-plan installs, clock advances, gateway
//! calls) and recovery re-invokes them against an engine rebuilt from the
//! latest snapshot (or genesis). The *effect* records interleaved in the
//! log (lifecycle transitions, edge commits, breaker flips) are not applied
//! — they are re-derived by the replay and cross-checked record-for-record
//! by the verify sink, so a replay that diverges from the original run by
//! even one transition fails loudly instead of resuming from a wrong state.

use aorta_net::DeviceRegistry;
use aorta_sim::FaultPlan;
use aorta_wal::{RecoveryError, SnapshotImage, WalHandle, WalRecord, WireRequest};

use crate::actions::CustomHandler;
use crate::shared::ActionRequest;
use crate::{Aorta, EngineConfig};

/// Everything needed to rebuild a shard engine from nothing: the immutable
/// birth state the WAL's `Genesis` record fingerprints.
///
/// Custom action handlers are code, not state — they cannot be serialized
/// into the log, so the operator supplies them here exactly as they were
/// staged on the original engine (staging is name-keyed, so order is
/// irrelevant).
pub struct GenesisSpec {
    /// The engine configuration (including the per-shard seed).
    pub config: EngineConfig,
    /// The device fleet exactly as it was at engine construction.
    pub registry: DeviceRegistry,
    /// Custom handlers staged before their `CREATE ACTION` statements.
    pub handlers: Vec<(String, CustomHandler)>,
}

impl GenesisSpec {
    /// Builds the genesis engine image: a fresh engine with the same
    /// config, fleet, and staged handlers as the original had at birth.
    pub fn build(&self) -> Box<Aorta> {
        let mut engine = Box::new(Aorta::with_registry(
            self.config.clone(),
            self.registry.clone(),
        ));
        for (name, handler) in &self.handlers {
            engine.register_handler(name.clone(), handler.clone());
        }
        engine
    }
}

/// Fingerprint of a genesis image: a cheap integrity check that a log is
/// being replayed against the engine lineage that wrote it (seed + shard
/// identity, splitmix64-finalized).
pub fn genesis_fingerprint(seed: u64, shard: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shard.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts an in-memory request to its wire image. Argument expressions
/// travel as re-parseable SQL text (the SQL layer guarantees
/// `parse_expr(expr.to_string()) == expr`).
pub fn wire_from_request(request: &ActionRequest) -> WireRequest {
    WireRequest {
        query_id: request.query_id,
        action: request.action.clone(),
        event_tuple: request.event_tuple.clone(),
        event_binding: request.event_binding.clone(),
        event_kind: request.event_kind,
        device_binding: request.device_binding.clone(),
        args: request.args.iter().map(|a| a.to_string()).collect(),
        candidates: request.candidates.clone(),
        created_at: request.created_at,
        deadline: request.deadline,
        degraded: request.degraded,
        attempts: request.attempts,
        hops: request.hops,
    }
}

/// Decodes a wire request back to the in-memory form.
///
/// # Errors
///
/// [`RecoveryError::BadRequest`] when an argument expression fails to
/// re-parse (which would mean the log was written by an incompatible
/// engine, or corrupted in a way the checksums cannot see).
pub fn request_from_wire(wire: &WireRequest) -> Result<ActionRequest, RecoveryError> {
    let mut args = Vec::with_capacity(wire.args.len());
    for a in &wire.args {
        args.push(
            aorta_sql::parse_expr(a)
                .map_err(|e| RecoveryError::BadRequest(format!("arg '{a}': {e}")))?,
        );
    }
    Ok(ActionRequest {
        query_id: wire.query_id,
        action: wire.action.clone(),
        event_tuple: wire.event_tuple.clone(),
        event_binding: wire.event_binding.clone(),
        event_kind: wire.event_kind,
        device_binding: wire.device_binding.clone(),
        args,
        candidates: wire.candidates.clone(),
        created_at: wire.created_at,
        deadline: wire.deadline,
        degraded: wire.degraded,
        attempts: wire.attempts,
        hops: wire.hops,
    })
}

/// What a successful recovery produced.
pub struct Recovered {
    /// The rebuilt engine, at the exact virtual-clock point the log ends.
    pub engine: Box<Aorta>,
    /// Records the replay emitted *past* the end of the log: the suffix of
    /// the final `run_until` that the crash cut short. The caller appends
    /// these to the durable store so the log stays complete for the next
    /// crash.
    pub appended: Vec<WalRecord>,
    /// Log records replayed (commands driven + effects cross-checked).
    pub replayed: usize,
}

/// Replays a WAL suffix against a base image, verifying every re-derived
/// record against the log.
///
/// `base` is the latest snapshot (`None` ⇒ rebuild from `genesis`);
/// `records` is the log suffix from that snapshot's position to the end.
/// The replaying engine is granted one crash immunity per `CrashApplied`
/// record in the suffix, so crashes already in the log do not halt it; the
/// final logged `run_until` therefore replays *through* the crash instant
/// to its deadline, and everything emitted past the log's end is returned
/// as `appended`.
///
/// # Errors
///
/// - [`RecoveryError::GenesisMismatch`] — the log belongs to another engine.
/// - [`RecoveryError::Divergence`] — a re-derived record differs from the
///   logged one: the replay did not reproduce the original run.
/// - [`RecoveryError::Leftover`] — the log has records the replay never
///   reached (a truncated or foreign command stream).
/// - [`RecoveryError::UnreplayableMigration`] — the suffix crosses a
///   `MigrateIn` (the snapshot-barrier invariant was violated).
/// - [`RecoveryError::BadRequest`] — a gateway record failed to decode.
pub fn recover_engine(
    base: Option<Box<Aorta>>,
    genesis: &GenesisSpec,
    records: Vec<WalRecord>,
    fingerprint: u64,
) -> Result<Recovered, RecoveryError> {
    let commands: Vec<WalRecord> = records.iter().filter(|r| r.is_command()).cloned().collect();
    let immunity = records
        .iter()
        .filter(|r| matches!(r, WalRecord::CrashApplied { .. }))
        .count() as u32;
    let replayed = records.len();

    let mut engine = match base {
        Some(image) => image,
        None => genesis.build(),
    };
    engine.grant_crash_immunity(immunity);
    let verify = WalHandle::verify(records);
    engine.attach_wal(verify.clone());

    for command in commands {
        match command {
            WalRecord::Genesis {
                fingerprint: logged,
            } => {
                if logged != fingerprint {
                    return Err(RecoveryError::GenesisMismatch {
                        logged,
                        supplied: fingerprint,
                    });
                }
                // The engine never emits Genesis itself; feed it through
                // the sink so the verify cursor consumes it in place.
                verify.append(WalRecord::Genesis {
                    fingerprint: logged,
                });
            }
            WalRecord::SqlExec { sql } => {
                // Errors replay deterministically (same statement fails,
                // same prefix applies), so the result is dropped.
                let _ = engine.execute_sql(&sql);
            }
            WalRecord::FaultsInjected { events } => {
                let mut plan = FaultPlan::new();
                for (t, fault) in events {
                    plan.schedule(t, fault);
                }
                engine.inject_faults(plan);
            }
            WalRecord::RunUntil { deadline } => engine.run_until(deadline),
            WalRecord::RequestInjected { request } => {
                engine.inject_request(request_from_wire(&request)?);
            }
            WalRecord::RouteProbe { request } => {
                // The result is routing advice the gateway consumed at
                // record time; replay only needs the RNG side effects.
                let _ = engine.cheapest_local_candidate(&request_from_wire(&request)?);
            }
            WalRecord::DrainEscalated => {
                // The drained requests were handed to the gateway; their
                // fate is in the *destination* shards' logs.
                let _ = engine.drain_escalated();
            }
            WalRecord::MigrateOut { device } => {
                // The entry went to another shard; locally it just leaves.
                let _ = engine.migrate_out(device);
            }
            WalRecord::MigrateIn { device } => {
                return Err(RecoveryError::UnreplayableMigration {
                    device: device.to_string(),
                });
            }
            effect => unreachable!("filtered to commands only: {effect:?}"),
        }
        if let Some((at, expected, emitted)) = verify.divergence() {
            engine.detach_wal();
            return Err(RecoveryError::Divergence {
                at,
                expected,
                emitted,
            });
        }
    }

    engine.detach_wal();
    if let Some((at, expected, emitted)) = verify.divergence() {
        return Err(RecoveryError::Divergence {
            at,
            expected,
            emitted,
        });
    }
    let remaining = verify.remaining();
    if remaining > 0 {
        return Err(RecoveryError::Leftover { remaining });
    }
    debug_assert!(
        !engine.is_crashed(),
        "replay immunity must cover every logged crash"
    );
    Ok(Recovered {
        engine,
        appended: verify.take_appended(),
        replayed,
    })
}

/// Recovers from a cold log alone — no snapshot, full replay from genesis.
/// Valid only while the log contains no `MigrateIn` (after the first
/// adoption, only snapshot-based recovery can reconstruct the shard).
///
/// # Errors
///
/// As [`recover_engine`].
pub fn recover_from_log(
    genesis: &GenesisSpec,
    records: Vec<WalRecord>,
    fingerprint: u64,
) -> Result<Recovered, RecoveryError> {
    recover_engine(None, genesis, records, fingerprint)
}

/// Rebuilds a shard on a *new* host from a shipped, already-verified
/// [`SnapshotImage`] (decode is the receiver's integrity gate; this
/// function trusts the image's contents but still cross-checks the replay
/// record-for-record).
///
/// The engine snapshot a donor holds in memory cannot cross a host
/// boundary — custom handlers are code — so the image carries the shard's
/// complete command history and the adopting host replays it from its own
/// `genesis` (which must describe the same birth state; the fingerprint
/// check enforces that). The caller stamps the returned engine with its new
/// host id and bumped epoch.
///
/// # Errors
///
/// As [`recover_engine`] — in particular, an image whose embedded
/// `Genesis` fingerprint disagrees with `genesis` fails with
/// [`RecoveryError::GenesisMismatch`], and an image cut after a device
/// adoption fails with [`RecoveryError::UnreplayableMigration`] instead of
/// rebuilding a shard missing that device's live state.
pub fn restore_from_image(
    genesis: &GenesisSpec,
    image: &SnapshotImage,
    fingerprint: u64,
) -> Result<Recovered, RecoveryError> {
    recover_engine(None, genesis, image.records(), fingerprint)
}
