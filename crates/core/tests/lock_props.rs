//! Property tests for [`LockManager`] (§4 synchronization).
//!
//! A shadow model replays arbitrary lock/unlock/extend/sweep sequences and
//! checks the invariants the failover path leans on: no two overlapping
//! grants on one device, an unlock (the crash-failover release) really
//! frees the device, and a lock's expiry never moves backwards.

use aorta_core::LockManager;
use aorta_device::DeviceId;
use aorta_sim::SimTime;
use proptest::prelude::*;

/// One scripted operation against the manager.
#[derive(Debug, Clone)]
enum Op {
    TryLock {
        dev: u32,
        query: u32,
        now: u64,
        dur: u64,
    },
    Unlock {
        dev: u32,
    },
    Extend {
        dev: u32,
        now: u64,
        until: u64,
    },
    Sweep {
        now: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0u32..8, 0u64..1_000, 1u64..200).prop_map(|(dev, query, now, dur)| Op::TryLock {
            dev,
            query,
            now,
            dur
        }),
        (0u32..4).prop_map(|dev| Op::Unlock { dev }),
        (0u32..4, 0u64..1_000, 0u64..1_200).prop_map(|(dev, now, until)| Op::Extend {
            dev,
            now,
            until
        }),
        (0u64..1_200).prop_map(|now| Op::Sweep { now }),
    ]
}

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two grants on the same device never overlap in time: a successful
    /// try_lock at `now` implies any earlier grant had expired or was
    /// explicitly released by then.
    #[test]
    fn prop_no_overlapping_grants(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut locks = LockManager::new();
        // Per device: the active grant's interval, if any.
        let mut active: Vec<Option<(u64, u64)>> = vec![None; 4];
        for op in &ops {
            match *op {
                Op::TryLock { dev, query, now, dur } => {
                    let until = now + dur;
                    let granted = locks.try_lock(DeviceId::camera(dev), query, t(now), t(until));
                    if granted {
                        if let Some((_, prev_until)) = active[dev as usize] {
                            // The previous grant must not cover `now`
                            // (expired, or unlocked — recorded as None).
                            prop_assert!(
                                prev_until <= now,
                                "grant at {now} overlaps previous grant until {prev_until}"
                            );
                        }
                        active[dev as usize] = Some((now, until));
                        prop_assert!(locks.is_locked(DeviceId::camera(dev), t(now)));
                        prop_assert_eq!(locks.holder(DeviceId::camera(dev), t(now)), Some(query));
                    } else {
                        // A refusal must be justified by a live grant.
                        let live = active[dev as usize].is_some_and(|(_, u)| now < u);
                        prop_assert!(live, "refused with no active grant at {now}");
                    }
                }
                Op::Unlock { dev } => {
                    locks.unlock(DeviceId::camera(dev));
                    active[dev as usize] = None;
                }
                Op::Extend { dev, now, until } => {
                    let ok = locks.extend(DeviceId::camera(dev), t(now), t(until));
                    if ok {
                        let (s, u) = active[dev as usize].expect("extended a ghost lock");
                        prop_assert!(now < u, "extend succeeded on an expired lock");
                        active[dev as usize] = Some((s, u.max(until)));
                    }
                }
                Op::Sweep { now } => {
                    locks.sweep(t(now));
                    // Sweeping drops grants already expired at `now`.
                    for slot in active.iter_mut() {
                        if slot.is_some_and(|(_, until)| until <= now) {
                            *slot = None;
                        }
                    }
                }
            }
        }
    }

    /// The crash-failover release: after unlock, the device is immediately
    /// grantable to any other query at any instant.
    #[test]
    fn prop_unlock_always_frees(
        query in 0u32..8,
        now in 0u64..1_000,
        dur in 1u64..500,
        retry_at in 0u64..1_000,
    ) {
        let mut locks = LockManager::new();
        let dev = DeviceId::camera(0);
        prop_assume!(locks.try_lock(dev, query, t(now), t(now + dur)));
        locks.unlock(dev);
        prop_assert!(!locks.is_locked(dev, t(retry_at)));
        prop_assert!(
            locks.try_lock(dev, query + 1, t(retry_at), t(retry_at + 1)),
            "unlocked device refused a new grant"
        );
    }

    /// `locked_until` is monotone under extends: extending never shortens
    /// the grant, whatever order of extends arrives.
    #[test]
    fn prop_extend_never_decreases_expiry(
        dur in 1u64..200,
        extends in proptest::collection::vec((0u64..180, 0u64..2_000), 0..20),
    ) {
        let mut locks = LockManager::new();
        let dev = DeviceId::camera(0);
        prop_assume!(locks.try_lock(dev, 1, t(0), t(dur)));
        let mut last = locks.locked_until(dev, t(0)).unwrap();
        for (at, until) in extends {
            // Only observe while the lock is alive; observing at `at`
            // requires at < expiry.
            if locks.locked_until(dev, t(at)).is_none() {
                continue;
            }
            locks.extend(dev, t(at), t(until));
            let now_until = locks.locked_until(dev, t(at)).unwrap();
            prop_assert!(
                now_until >= last,
                "expiry moved backwards: {now_until} < {last}"
            );
            last = now_until;
        }
    }

    /// Accounting: every try_lock attempt lands in exactly one of
    /// acquisitions or conflicts.
    #[test]
    fn prop_attempts_partition_into_grants_and_conflicts(
        ops in proptest::collection::vec((0u32..4, 0u64..1_000, 1u64..200), 1..60),
    ) {
        let mut locks = LockManager::new();
        let mut attempts = 0u64;
        for (dev, now, dur) in ops {
            let _ = locks.try_lock(DeviceId::camera(dev), 1, t(now), t(now + dur));
            attempts += 1;
        }
        prop_assert_eq!(locks.acquisitions() + locks.conflicts(), attempts);
    }
}

/// Regression (crash recovery): a process crash while a request is executing
/// — device lock held — must not leak the lock through recovery. Replay
/// re-acquires and releases it deterministically, so the recovered engine's
/// lock table is byte-identical to an uninterrupted run's and the device is
/// grantable again afterwards.
#[test]
fn crash_mid_execution_relocks_deterministically_on_replay() {
    use aorta_core::{genesis_fingerprint, recover_from_log, EngineConfig, GenesisSpec};
    use aorta_device::PervasiveLab;
    use aorta_net::DeviceRegistry;
    use aorta_sim::{FaultEvent, FaultPlan, SimDuration};
    use aorta_wal::{MemStore, WalHandle, WalRecord};

    const SNAPSHOT_AQ: &str = r#"CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

    // One camera, one mote: every epoch's photo serializes through one lock.
    let spec = GenesisSpec {
        config: EngineConfig::seeded(11),
        registry: DeviceRegistry::from_lab(
            PervasiveLab::with_sizes(1, 1, 0)
                .with_reliable_cameras()
                .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO),
        ),
        handlers: Vec::new(),
    };
    let fp = genesis_fingerprint(11, 0);
    let cam = DeviceId::camera(0);
    let epoch = t(60_000_000);

    // Find an instant inside the second epoch's lock window: the seed is
    // fixed, so this probe is deterministic.
    let crash_at = [500u64, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000]
        .into_iter()
        .map(|us| epoch + SimDuration::from_micros(us))
        .find(|&at| {
            let mut probe = spec.build();
            probe.execute_sql(SNAPSHOT_AQ).unwrap();
            probe.run_until(at);
            probe.locks().is_locked(cam, at)
        })
        .expect("no instant found with the camera lock held");

    let mut plan = FaultPlan::new();
    plan.schedule(crash_at, FaultEvent::ProcessCrash(cam));
    let drive = |engine: &mut aorta_core::Aorta| {
        for i in 1..=5u64 {
            engine.run_until(t(i * 30_000_000));
            if engine.is_crashed() {
                return;
            }
        }
    };

    // Reference: crash absorbed, request completes, lock released normally.
    let mut reference = spec.build();
    reference.grant_crash_immunity(1);
    reference.execute_sql(SNAPSHOT_AQ).unwrap();
    reference.inject_faults(plan.clone());
    drive(&mut reference);

    // Live run halts holding the lock; recovery replays through the crash.
    let mut live = spec.build();
    let handle = WalHandle::record(Box::new(MemStore::new()), None, "s0");
    handle.append(WalRecord::Genesis { fingerprint: fp });
    live.attach_wal(handle.clone());
    live.execute_sql(SNAPSHOT_AQ).unwrap();
    live.inject_faults(plan);
    drive(&mut live);
    assert!(live.is_crashed());
    assert!(
        live.locks().is_locked(cam, crash_at),
        "the crash must land inside the execution's lock window"
    );

    let recovered = recover_from_log(&spec, handle.records().unwrap(), fp).expect("recovery");
    let mut engine = recovered.engine;
    drive(&mut engine);

    // The replay re-acquired and released the lock on the original
    // schedule: same grant counters, same table, camera grantable again.
    assert_eq!(
        format!("{:?}", engine.locks()),
        format!("{:?}", reference.locks()),
        "lock table must match the uninterrupted run"
    );
    assert_eq!(
        engine.locks().acquisitions(),
        reference.locks().acquisitions()
    );
    assert!(!engine.locks().is_locked(cam, engine.now()));
    assert_eq!(engine.state_digest(), reference.state_digest());
    let stats = engine.stats();
    let accounted = stats.executed
        + stats.degraded
        + stats.connect_failures
        + stats.busy_rejections
        + stats.no_candidate
        + stats.timed_out
        + stats.out_of_range
        + stats.action_errors
        + stats.orphaned
        + stats.shed
        + stats.expired
        + engine.pending_requests();
    assert_eq!(stats.requests, accounted, "{stats:?}");
}

/// Regression (overload lifecycle): a request cancelled at execution because
/// its deadline passed must release the device lock its lane was holding —
/// the deadline analogue of the lock leak the crash-failover path fixed.
/// Without the release, the single camera stays locked until the sweep and
/// every later epoch queues behind a cancelled request.
#[test]
fn expired_request_releases_its_device_lock() {
    use aorta_core::{Aorta, EngineConfig};
    use aorta_device::{DeviceKind, PervasiveLab};
    use aorta_sim::SimDuration;

    // One camera, one mote, two photo actions per event: both requests land
    // in one lane on the one camera, so the second starts 5ms (the schedule
    // guard) after the first completes — a gap the dispatcher's predicted
    // finish does not include.
    const TWIN_SHOT: &str = r#"CREATE AQ twin AS
        SELECT photo(c.ip, s.loc, "photos/a"), photo(c.ip, s.loc, "photos/b")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

    let run = |deadline: Option<SimDuration>| {
        let lab = PervasiveLab::with_sizes(1, 1, 0)
            .with_reliable_cameras()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
        let mut config = EngineConfig::seeded(11);
        if let Some(budget) = deadline {
            config = config.with_deadline(budget);
        }
        let mut aorta = Aorta::with_lab(config, lab);
        aorta.execute_sql(TWIN_SHOT).unwrap();
        // 30s past the last epoch, so the final epoch's (legitimate) lock
        // has run out by the time the post-run lock check below looks.
        aorta.run_for(SimDuration::from_secs(150));
        aorta
    };

    // Calibration pass without deadlines: the slowest completion is the
    // lane's second photo, whose latency includes the unpredicted guard.
    let calibrated = run(None);
    let lat = calibrated.latency_stats();
    assert!(
        lat.count() >= 2,
        "both photos should complete unconstrained"
    );
    let slowest = lat.max().expect("non-empty");

    // A budget below the real completion but above the predicted one: the
    // dispatcher accepts the assignment, execution must cancel it.
    let budget = slowest - SimDuration::from_millis(3);
    let aorta = run(Some(budget));
    let stats = aorta.stats();
    assert!(stats.expired >= 1, "{stats:?}");
    assert_eq!(stats.late_successes, 0, "{stats:?}");
    assert!(
        aorta.trace().any("deadline", "lock released after expiry"),
        "expiry must release the lane's lock:\n{}",
        aorta.trace().render()
    );
    // The camera is actually free again, not waiting on the lock sweep.
    for cam in aorta.registry().ids_of_kind(DeviceKind::Camera) {
        assert!(
            !aorta.locks().is_locked(cam, aorta.now()),
            "camera still locked after its holder expired"
        );
    }
    // Conservation still closes with the expiry counted.
    let accounted = stats.executed
        + stats.degraded
        + stats.connect_failures
        + stats.busy_rejections
        + stats.no_candidate
        + stats.timed_out
        + stats.out_of_range
        + stats.action_errors
        + stats.orphaned
        + stats.shed
        + stats.expired
        + aorta.pending_requests();
    assert_eq!(stats.requests, accounted, "{stats:?}");
}
