//! Crash-recovery integration tests for the WAL subsystem (single engine).
//!
//! The contract under test: attaching a WAL never perturbs a run, and a
//! process crash mid-run recovers — by snapshot or by full replay from
//! genesis — to a state *byte-identical* to an uninterrupted reference run
//! over the same inputs (same stats, same trace, same RNG position, same
//! lock table; the `state_digest` covers all of it).

use aorta_core::{
    genesis_fingerprint, recover_engine, recover_from_log, Aorta, EngineConfig, GenesisSpec,
};
use aorta_device::{DeviceId, PervasiveLab};
use aorta_net::DeviceRegistry;
use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimTime};
use aorta_wal::{MemStore, WalHandle, WalManager, WalRecord};

const SNAPSHOT_AQ: &str = r#"CREATE AQ snapshot AS
    SELECT photo(c.ip, s.loc, "photos/admin")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

fn t(secs: u64) -> SimTime {
    SimTime::from_micros(secs * 1_000_000)
}

fn lab() -> PervasiveLab {
    PervasiveLab::with_sizes(4, 6, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
}

fn genesis(seed: u64) -> (GenesisSpec, u64) {
    let spec = GenesisSpec {
        config: EngineConfig::seeded(seed),
        registry: DeviceRegistry::from_lab(lab()),
        handlers: Vec::new(),
    };
    (spec, genesis_fingerprint(seed, 0))
}

/// Camera crash/recover plus a process crash at 150.01s (mid-slice, between
/// the 120s and 180s event epochs).
fn plan_with_process_crash() -> FaultPlan<DeviceId> {
    let mut plan = FaultPlan::new();
    plan.schedule(t(90), FaultEvent::Crash(DeviceId::camera(1)));
    plan.schedule(
        t(150) + SimDuration::from_millis(10),
        FaultEvent::ProcessCrash(DeviceId::camera(0)),
    );
    plan.schedule(t(200), FaultEvent::Recover(DeviceId::camera(1)));
    plan
}

fn drive_slices(engine: &mut Aorta, from: u64, to: u64) {
    for i in from..=to {
        engine.run_until(t(30 * i));
        if engine.is_crashed() {
            return;
        }
    }
}

/// Attaching a WAL is a separate channel: a logged run is byte-identical
/// to an unlogged one over the same inputs.
#[test]
fn wal_attach_never_perturbs_the_run() {
    let (spec, fp) = genesis(7);

    let mut silent = spec.build();
    silent.execute_sql(SNAPSHOT_AQ).unwrap();
    silent.inject_faults(plan_with_process_crash());
    silent.grant_crash_immunity(1);
    drive_slices(&mut silent, 1, 10);

    let mut logged = spec.build();
    let handle = WalHandle::record(Box::new(MemStore::new()), None, "s0");
    handle.append(WalRecord::Genesis { fingerprint: fp });
    logged.attach_wal(handle.clone());
    logged.execute_sql(SNAPSHOT_AQ).unwrap();
    logged.inject_faults(plan_with_process_crash());
    logged.grant_crash_immunity(1);
    drive_slices(&mut logged, 1, 10);

    assert_eq!(silent.stats(), logged.stats());
    assert_eq!(silent.trace().render(), logged.trace().render());
    assert_eq!(silent.state_digest(), logged.state_digest());
    // …and the log actually recorded the run.
    let records = handle.records().unwrap();
    assert!(records.len() > 4, "only {} records", records.len());
    assert!(records
        .iter()
        .any(|r| matches!(r, WalRecord::CrashApplied { .. })));
}

/// A process crash mid-run, recovered by full replay from genesis, resumes
/// at the exact virtual-clock point and finishes byte-identical to an
/// uninterrupted reference run.
#[test]
fn genesis_replay_recovery_matches_uninterrupted_run() {
    let (spec, fp) = genesis(7);

    // Reference: same inputs, crash absorbed (never halts).
    let mut reference = spec.build();
    reference.grant_crash_immunity(1);
    reference.execute_sql(SNAPSHOT_AQ).unwrap();
    reference.inject_faults(plan_with_process_crash());
    drive_slices(&mut reference, 1, 10);
    assert!(!reference.is_crashed());

    // Live run: same inputs, logged; the crash halts it mid-slice 6.
    let mut live = spec.build();
    let handle = WalHandle::record(Box::new(MemStore::new()), None, "s0");
    handle.append(WalRecord::Genesis { fingerprint: fp });
    live.attach_wal(handle.clone());
    live.execute_sql(SNAPSHOT_AQ).unwrap();
    live.inject_faults(plan_with_process_crash());
    drive_slices(&mut live, 1, 10);
    assert!(live.is_crashed(), "process crash must halt the engine");
    assert!(live.now() < t(180), "halted mid-slice, not at its end");

    // Recover: replay the log from genesis. The final logged RunUntil(180)
    // replays *through* the crash instant, so the replay emits records past
    // the log's end — the re-derived crash-truncated tail.
    let records = handle.records().unwrap();
    let recovered = recover_from_log(&spec, records, fp).expect("recovery");
    assert!(
        !recovered.appended.is_empty(),
        "replaying past the crash must extend the log"
    );
    let mut engine = recovered.engine;
    assert_eq!(engine.now(), t(180), "resume at the logged slice deadline");
    assert!(!engine.is_crashed());

    // Finish the timeline and compare everything.
    drive_slices(&mut engine, 7, 10);
    assert_eq!(engine.now(), reference.now());
    assert_eq!(engine.stats(), reference.stats());
    assert_eq!(engine.trace().render(), reference.trace().render());
    assert_eq!(engine.state_digest(), reference.state_digest());
}

/// Snapshot-based recovery (snapshot + suffix replay) lands in exactly the
/// same state as full replay from genesis — before and after the log is
/// compacted up to the snapshot.
#[test]
fn snapshot_replay_equals_genesis_replay() {
    let (spec, fp) = genesis(11);

    let mut live = spec.build();
    let handle = WalHandle::record(Box::new(MemStore::new()), None, "s0");
    handle.append(WalRecord::Genesis { fingerprint: fp });
    let mut manager: WalManager<Box<Aorta>> = WalManager::new(handle.clone(), 1_000_000);
    live.attach_wal(handle.clone());
    live.execute_sql(SNAPSHOT_AQ).unwrap();
    live.inject_faults({
        let mut plan = FaultPlan::new();
        plan.schedule(t(90), FaultEvent::Crash(DeviceId::camera(1)));
        plan.schedule(t(200), FaultEvent::Recover(DeviceId::camera(1)));
        plan
    });
    drive_slices(&mut live, 1, 4);
    manager.force_snapshot(|| live.fork_snapshot());
    drive_slices(&mut live, 5, 8);
    let target = live.state_digest();

    // Full replay from genesis.
    let records = manager.records().unwrap();
    let from_genesis = recover_from_log(&spec, records.clone(), fp).expect("genesis replay");
    assert_eq!(from_genesis.engine.state_digest(), target);

    // Snapshot + suffix replay.
    let (at, image) = manager.latest_snapshot().expect("snapshot taken");
    let suffix = records[(at - handle.base()) as usize..].to_vec();
    let from_snapshot =
        recover_engine(Some(image.fork_snapshot()), &spec, suffix, fp).expect("suffix replay");
    assert_eq!(from_snapshot.engine.state_digest(), target);
    assert!(
        from_snapshot.replayed < from_genesis.replayed,
        "the snapshot must shorten the replay"
    );

    // Compact the log up to the snapshot and recover from what remains.
    let dropped = manager.compact_to_snapshot().unwrap();
    assert_eq!(dropped as u64, at);
    let (at, image) = manager
        .latest_snapshot()
        .expect("snapshot survives compaction");
    assert_eq!(at, handle.base());
    let from_compacted = recover_engine(
        Some(image.fork_snapshot()),
        &spec,
        manager.records().unwrap(),
        fp,
    )
    .expect("compacted replay");
    assert_eq!(from_compacted.engine.state_digest(), target);
}

/// A log from one lineage refuses to replay against another genesis, and a
/// truncated command stream surfaces as leftover records, never silently.
#[test]
fn recovery_refuses_foreign_or_truncated_logs() {
    let (spec, fp) = genesis(7);
    let mut live = spec.build();
    let handle = WalHandle::record(Box::new(MemStore::new()), None, "s0");
    handle.append(WalRecord::Genesis { fingerprint: fp });
    live.attach_wal(handle.clone());
    live.execute_sql(SNAPSHOT_AQ).unwrap();
    drive_slices(&mut live, 1, 3);
    let records = handle.records().unwrap();

    // Wrong genesis fingerprint.
    let err = recover_from_log(&spec, records.clone(), fp ^ 1)
        .err()
        .expect("foreign log must be refused");
    assert!(
        matches!(err, aorta_wal::RecoveryError::GenesisMismatch { .. }),
        "{err}"
    );

    // Drop the final command: its effects are left unconsumed in the log.
    let mut truncated = records.clone();
    let last_command = truncated
        .iter()
        .rposition(|r| r.is_command())
        .expect("log has commands");
    truncated.remove(last_command);
    let err = recover_from_log(&spec, truncated, fp)
        .err()
        .expect("truncated log must be refused");
    assert!(
        matches!(
            err,
            aorta_wal::RecoveryError::Leftover { .. } | aorta_wal::RecoveryError::Divergence { .. }
        ),
        "{err}"
    );
}
