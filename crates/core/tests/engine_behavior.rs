//! Behavioural tests of the continuous executor: event edge detection,
//! request deadlines, dispatch policies and latency accounting.

use aorta_core::{Aorta, DispatchPolicy, EngineConfig};
use aorta_data::Location;
use aorta_device::{Camera, CameraFailureModel, CameraSpec, Mote, PervasiveLab, SpikeModel};
use aorta_net::DeviceRegistry;
use aorta_sim::{SimDuration, SimTime};

const SNAPSHOT_ALL: &str = r#"CREATE AQ q AS
    SELECT photo(c.ip, s.loc, "p")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#;

/// A spike lasting several sampling epochs fires exactly one request —
/// detection is edge-triggered, not level-triggered.
#[test]
fn one_physical_event_fires_one_request() {
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    registry.register(
        Mote::new(0, Location::new(5.0, 4.0, 1.0), 1)
            .with_per_hop_loss(0.0)
            .with_spikes(SpikeModel::Periodic {
                period: SimDuration::from_mins(10),
                offset: SimDuration::from_secs(5),
                // Spike spans ~8 sampling epochs.
                width: SimDuration::from_secs(8),
            })
            .into(),
        SimTime::ZERO,
    );
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(1), registry);
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    aorta.run_for(SimDuration::from_mins(2));
    let stats = aorta.stats();
    assert_eq!(stats.events_detected, 1, "{stats:?}");
    assert_eq!(stats.requests, 1, "{stats:?}");
}

/// Requests that cannot start within the request timeout fail rather than
/// queueing forever (events are transient).
#[test]
fn stale_requests_time_out() {
    // One camera, one-second timeout, a burst of ten simultaneous events:
    // at most a couple of photos fit into the deadline window.
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    for i in 0..10 {
        registry.register(
            Mote::new(i, Location::new(4.0 + 0.2 * f64::from(i), 4.0, 1.0), 1)
                .with_per_hop_loss(0.0)
                .with_spikes(SpikeModel::Periodic {
                    period: SimDuration::from_mins(10),
                    offset: SimDuration::ZERO,
                    width: SimDuration::from_secs(2),
                })
                .into(),
            SimTime::ZERO,
        );
    }
    let mut config = EngineConfig::seeded(2);
    config.request_timeout = SimDuration::from_secs(1);
    let mut aorta = Aorta::with_registry(config, registry);
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    aorta.run_for(SimDuration::from_mins(1));
    let stats = aorta.stats();
    assert_eq!(stats.requests, 10, "{stats:?}");
    assert!(stats.timed_out >= 5, "{stats:?}");
    assert!(stats.executed >= 1, "{stats:?}");
    assert_eq!(
        stats.executed + stats.timed_out + stats.connect_failures,
        10,
        "{stats:?}"
    );
}

/// Scheduled dispatch (LERFA + SRFE) achieves lower event-to-completion
/// latency than independent min-cost dispatch on bursty workloads.
#[test]
fn scheduled_dispatch_lowers_latency() {
    let run = |policy: DispatchPolicy| {
        let lab = PervasiveLab::standard()
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
            .with_reliable_cameras();
        let mut aorta = Aorta::with_lab(EngineConfig::seeded(3).with_dispatch(policy), lab);
        for i in 0..10 {
            aorta
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
                ))
                .unwrap();
        }
        aorta.run_for(SimDuration::from_mins(10));
        aorta.run_for(SimDuration::from_secs(30));
        aorta.stats()
    };
    let scheduled = run(DispatchPolicy::Scheduled);
    let min_cost = run(DispatchPolicy::MinCost);
    let sched_latency = scheduled.mean_action_latency.expect("executed requests");
    let mc_latency = min_cost.mean_action_latency.expect("executed requests");
    assert!(
        sched_latency < mc_latency,
        "scheduled {sched_latency} should beat min-cost {mc_latency}"
    );
    // Both completed everything (reliable cameras, generous timeout).
    assert_eq!(scheduled.executed, scheduled.requests, "{scheduled:?}");
    assert_eq!(min_cost.executed, min_cost.requests, "{min_cost:?}");
}

/// Latency accounting is plausible: mean latency at least the minimum photo
/// time and bounded by the request timeout plus the longest action.
#[test]
fn latency_accounting_bounds() {
    let lab = PervasiveLab::standard()
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
        .with_reliable_cameras();
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(4), lab);
    for i in 0..10 {
        aorta
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .unwrap();
    }
    aorta.run_for(SimDuration::from_mins(5));
    aorta.run_for(SimDuration::from_secs(40));
    let stats = aorta.stats();
    let latency = stats.mean_action_latency.expect("requests executed");
    assert!(latency >= SimDuration::from_millis(360), "{latency}");
    assert!(
        latency <= SimDuration::from_secs(36),
        "latency {latency} exceeds timeout + max action"
    );
}

/// A lock conflict surfaces in the stats when two queries contend for one
/// device across sampling epochs.
#[test]
fn stats_expose_locking_activity() {
    let lab = PervasiveLab::with_sizes(1, 10, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
        .with_reliable_cameras();
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(5), lab);
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    aorta.run_for(SimDuration::from_mins(3));
    let stats = aorta.stats();
    assert!(stats.lock_acquisitions > 0, "{stats:?}");
    assert_eq!(stats.photos_blurred + stats.photos_wrong, 0, "{stats:?}");
}

/// The execution trace records why things happened: events, dispatch
/// decisions, probe exclusions.
#[test]
fn trace_records_the_execution_story() {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(9), lab);
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    // Camera 1 stays registered (so it remains a candidate) but never
    // answers connections: probing must exclude it, visibly.
    let flaky = Camera::new(
        1,
        CameraSpec::axis_2130(),
        Location::new(6.0, 3.0, 3.0),
        90.0,
        CameraFailureModel {
            connect_loss: 1.0,
            ..CameraFailureModel::reliable()
        },
    );
    aorta.registry_mut().register(flaky.into(), SimTime::ZERO);
    aorta.run_for(SimDuration::from_mins(2));
    let trace = aorta.trace();
    assert!(trace.count("event") > 0, "events traced");
    assert!(trace.count("dispatch") > 0, "dispatch traced");
    assert!(
        trace.any("probe", "camera-1 unavailable"),
        "offline camera's probe exclusion traced"
    );
    assert!(trace.any("dispatch", "assigned to camera-0"));
}

/// Tracing can be disabled for benchmark runs.
#[test]
fn trace_can_be_disabled() {
    let lab =
        PervasiveLab::standard().with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut aorta = Aorta::with_lab(EngineConfig::seeded(10), lab);
    aorta.disable_trace();
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    aorta.run_for(SimDuration::from_mins(2));
    assert!(aorta.trace().is_empty());
    assert!(aorta.stats().requests > 0, "engine still works untraced");
}

/// Failover retries: with `retry_failed` configured, a connect failure on
/// one camera re-dispatches the request to the other instead of failing.
#[test]
fn retries_fail_over_to_other_candidates() {
    let build = |retries: u32| {
        let mut registry = DeviceRegistry::new();
        // Camera 0 never answers; camera 1 is perfect. Both cover the mote.
        registry.register(
            Camera::new(
                0,
                CameraSpec::axis_2130(),
                Location::new(3.0, 3.0, 3.0),
                90.0,
                CameraFailureModel {
                    connect_loss: 1.0,
                    ..CameraFailureModel::reliable()
                },
            )
            .into(),
            SimTime::ZERO,
        );
        registry.register(
            Camera::new(
                1,
                CameraSpec::axis_2130(),
                Location::new(5.0, 3.0, 3.0),
                90.0,
                CameraFailureModel::reliable(),
            )
            .into(),
            SimTime::ZERO,
        );
        registry.register(
            Mote::new(0, Location::new(4.0, 4.5, 1.0), 1)
                .with_per_hop_loss(0.0)
                .with_spikes(SpikeModel::Periodic {
                    period: SimDuration::from_mins(1),
                    offset: SimDuration::ZERO,
                    width: SimDuration::from_secs(2),
                })
                .into(),
            SimTime::ZERO,
        );
        // Probing must be off so the dead camera stays a candidate and the
        // failure happens at execution time (where retries kick in).
        let config = EngineConfig::seeded(12)
            .without_probing()
            .with_retries(retries);
        let mut aorta = Aorta::with_registry(config, registry);
        aorta.execute_sql(SNAPSHOT_ALL).unwrap();
        aorta.run_for(SimDuration::from_mins(5));
        aorta.run_for(SimDuration::from_secs(10));
        aorta.stats()
    };
    let without = build(0);
    let with = build(2);
    // Without retries, requests routed to the dead camera are lost.
    assert!(without.connect_failures > 0, "{without:?}");
    assert_eq!(without.retries, 0);
    // With retries every failed attempt fails over and eventually succeeds.
    assert!(with.retries > 0, "{with:?}");
    assert_eq!(with.executed, with.requests, "{with:?}");
    assert_eq!(with.connect_failures, 0, "{with:?}");
    assert!(with.photos_ok >= with.requests, "{with:?}");
}

/// The dumped catalog script recreates the same plans on a fresh engine.
#[test]
fn dump_queries_restores_the_catalog() {
    let lab = PervasiveLab::standard();
    let mut original = Aorta::with_lab(EngineConfig::seeded(13), lab.clone());
    original.execute_sql(SNAPSHOT_ALL).unwrap();
    original
        .execute_sql(
            r#"CREATE AQ notify AS
               SELECT sendphoto(p.number, "photos/x.jpg")
               FROM sensor s, phone p
               WHERE s.accel_x > 500 AND p.in_coverage = TRUE"#,
        )
        .unwrap();
    let script = original.dump_queries();
    assert!(script.contains("CREATE AQ q AS"), "{script}");
    assert!(script.contains("CREATE AQ notify AS"), "{script}");

    let mut restored = Aorta::with_lab(EngineConfig::seeded(13), lab);
    restored.execute_sql(&script).unwrap();
    assert_eq!(restored.catalog().query_count(), 2);
    // Same structure: event/device bindings and conjunct counts agree.
    for name in ["q", "notify"] {
        let a = original.catalog().query(name).unwrap();
        let b = restored.catalog().query(name).unwrap();
        assert_eq!(a.event_binding, b.event_binding, "{name}");
        assert_eq!(a.event_conjuncts, b.event_conjuncts, "{name}");
        assert_eq!(a.device, b.device, "{name}");
        assert_eq!(a.actions, b.actions, "{name}");
    }
}

/// Engine state is transferable across threads (the paper's engine serves
/// many applications; embedding it behind a work queue must be possible).
#[test]
fn engine_and_devices_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Aorta>();
    assert_send::<DeviceRegistry>();
    assert_send::<Camera>();
    assert_send::<aorta_core::EngineStats>();
    assert_send::<aorta_sched::Instance>();
}

/// Lossy sensor radios degrade event detection gracefully: NULL readings
/// never fire predicates and never crash evaluation.
#[test]
fn lossy_radios_suppress_rather_than_corrupt_events() {
    let mut registry = DeviceRegistry::new();
    registry.register(
        Camera::new(
            0,
            CameraSpec::axis_2130(),
            Location::new(4.0, 3.0, 3.0),
            90.0,
            CameraFailureModel::reliable(),
        )
        .into(),
        SimTime::ZERO,
    );
    // A mote that is always spiking, but whose 5-hop radio at 40% loss per
    // hop almost never delivers a reading.
    registry.register(
        Mote::new(0, Location::new(5.0, 4.0, 1.0), 5)
            .with_per_hop_loss(0.4)
            .with_spikes(SpikeModel::Periodic {
                period: SimDuration::from_secs(10),
                offset: SimDuration::ZERO,
                width: SimDuration::from_secs(10),
            })
            .into(),
        SimTime::ZERO,
    );
    let mut aorta = Aorta::with_registry(EngineConfig::seeded(14), registry);
    aorta.execute_sql(SNAPSHOT_ALL).unwrap();
    aorta.run_for(SimDuration::from_mins(3));
    let stats = aorta.stats();
    // Acquisition succeeds occasionally (retries help), but many sampling
    // epochs observe only NULLs: far fewer events than epochs.
    assert!(stats.events_detected < 60, "{stats:?}");
    // When readings do get through, the pipeline works.
    assert!(stats.events_detected >= 1, "{stats:?}");
    assert_eq!(stats.action_errors, 0, "{stats:?}");
}
