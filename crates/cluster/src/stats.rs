//! Cluster-wide statistics: per-shard engine counters aggregated under the
//! same conservation discipline the single engine guarantees.
//!
//! The engine invariant (per shard) is
//! `requests + escalated_in == terminal + pending + escalated_out`: a
//! request a shard admits (or adopts) either reaches a terminal counter,
//! is visibly pending, or has been handed to the gateway. The gateway in
//! turn re-injects every escalated request into exactly one sibling or
//! counts it dropped (or expired, when its deadline lapsed in flight), so
//! cluster-wide the sums telescope to
//! `Σ requests == Σ terminal + Σ pending + gateway_dropped + gateway_expired`
//! — a re-routed request is counted exactly once, on the shard that
//! admitted it. The per-shard terminal set includes the overload outcomes
//! (`shed`, `expired`, `degraded`) alongside the failure counters.

use aorta_core::EngineStats;

/// Aggregated statistics for a [`crate::ShardManager`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Per-shard engine snapshots, indexed by shard ID.
    pub per_shard: Vec<EngineStats>,
    /// Requests admitted but not yet terminally resolved, summed over
    /// shards (queued executions plus operator backlogs).
    pub pending: u64,
    /// Requests the gateway re-routed to a sibling shard.
    pub rerouted: u64,
    /// Escalated requests no sibling could serve (or that had already
    /// visited every shard); these are the cluster's terminal drops.
    pub gateway_dropped: u64,
    /// Escalated requests whose deadline lapsed in flight at the gateway —
    /// dropped as counted sheds instead of being retried forever.
    pub gateway_expired: u64,
    /// Escalated requests currently parked in the gateway's backoff queue
    /// (awaiting delivery to a sibling, or admission-queued while their
    /// shard rebuilds). In-flight, not lost: they resolve to an injection,
    /// a drop, or an expiry on delivery.
    pub gateway_parked: u64,
    /// Device ownership transfers performed by the rebalancer.
    pub migrations: u64,
    /// Cross-host failovers completed (dead shard rebuilt from a shipped
    /// snapshot image on a fresh host).
    pub failovers: u64,
    /// Deliveries stamped with a fenced-off incarnation epoch, rejected at
    /// the fence and re-routed under the current epoch — counted, never
    /// double-applied.
    pub zombie_rejects: u64,
}

impl ClusterStats {
    /// Requests admitted cluster-wide (each counted once, on the shard
    /// whose event detection created it).
    pub fn requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.requests).sum()
    }

    /// Requests whose action a device accepted, cluster-wide.
    pub fn executed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.executed).sum()
    }

    /// Requests escalated by shards to the gateway.
    pub fn escalated_out(&self) -> u64 {
        self.per_shard.iter().map(|s| s.escalated_out).sum()
    }

    /// Escalated requests adopted by sibling shards.
    pub fn escalated_in(&self) -> u64 {
        self.per_shard.iter().map(|s| s.escalated_in).sum()
    }

    /// Requests completed at degraded (brownout) quality, cluster-wide.
    pub fn degraded(&self) -> u64 {
        self.per_shard.iter().map(|s| s.degraded).sum()
    }

    /// Requests shed by admission or deadline rejection, cluster-wide.
    pub fn shed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.shed).sum()
    }

    /// Requests cancelled at execution after their deadline, cluster-wide.
    pub fn expired(&self) -> u64 {
        self.per_shard.iter().map(|s| s.expired).sum()
    }

    /// Successes that completed after their deadline, cluster-wide.
    pub fn late_successes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.late_successes).sum()
    }

    /// Sum of every terminal outcome counter over all shards.
    pub fn terminal(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| {
                s.executed
                    + s.degraded
                    + s.connect_failures
                    + s.busy_rejections
                    + s.no_candidate
                    + s.timed_out
                    + s.out_of_range
                    + s.action_errors
                    + s.orphaned
                    + s.shed
                    + s.expired
            })
            .sum()
    }

    /// Mean event-to-completion latency over executed requests,
    /// cluster-wide (weighted by each shard's executed count), in seconds.
    pub fn mean_latency_secs(&self) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0u64;
        for s in &self.per_shard {
            if let Some(lat) = s.mean_action_latency {
                let n = s.latency_weight();
                total += lat.as_secs_f64() * n as f64;
                count += n;
            }
        }
        (count > 0).then(|| total / count as f64)
    }

    /// Verifies the cluster-wide conservation invariant, returning a
    /// description of the imbalance when it fails.
    ///
    /// Checks both the telescoped cluster identity (requests equal
    /// `terminal + pending + gateway_dropped + gateway_expired +
    /// gateway_parked`) and the gateway's own ledger (escalated_out equals
    /// `escalated_in + gateway_dropped + gateway_expired +
    /// gateway_parked`): together they imply every re-routed request is
    /// counted exactly once. The parked term covers the degraded window —
    /// work queued at the gateway while a shard rebuilds is in flight, not
    /// lost. Zombie rejects enter neither identity: a fenced delivery is a
    /// discarded *duplicate*; the request itself is re-routed and stays
    /// accounted through the other terms.
    pub fn check_conservation(&self) -> Result<(), String> {
        let requests = self.requests();
        let accounted = self.terminal()
            + self.pending
            + self.gateway_dropped
            + self.gateway_expired
            + self.gateway_parked;
        if requests != accounted {
            return Err(format!(
                "requests {requests} != terminal {} + pending {} + gateway_dropped {} \
                 + gateway_expired {} + gateway_parked {}",
                self.terminal(),
                self.pending,
                self.gateway_dropped,
                self.gateway_expired,
                self.gateway_parked
            ));
        }
        let out = self.escalated_out();
        let handled =
            self.escalated_in() + self.gateway_dropped + self.gateway_expired + self.gateway_parked;
        if out != handled {
            return Err(format!(
                "escalated_out {out} != escalated_in {} + gateway_dropped {} + gateway_expired {} \
                 + gateway_parked {}",
                self.escalated_in(),
                self.gateway_dropped,
                self.gateway_expired,
                self.gateway_parked
            ));
        }
        Ok(())
    }
}

/// Extension used by the latency aggregation: `EngineStats` exposes only
/// the mean, so weight it by executions (the mean's denominator is the
/// count of completed actions, which `executed` tracks closely enough for
/// an aggregate mean across homogeneous shards).
trait LatencyWeight {
    fn latency_weight(&self) -> u64;
}

impl LatencyWeight for EngineStats {
    fn latency_weight(&self) -> u64 {
        // Degraded completions record latencies too.
        self.executed + self.degraded
    }
}
