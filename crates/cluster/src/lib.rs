//! # aorta-cluster — sharded multi-engine execution
//!
//! Scales the single-engine design to a partitioned fleet (the paper's §8
//! "large number of heterogeneous devices" direction): a [`ShardManager`]
//! runs *k* independent [`aorta_core::Aorta`] engines over disjoint device
//! slices on **one** deterministic virtual clock, a gateway routes admitted
//! queries and escalated action requests between them, and a rebalancer
//! migrates device ownership at safe points when backlogs skew.
//!
//! Three properties carry over from the single engine, by construction:
//!
//! * **Determinism** — shards step in `(next_event_time, shard_id)` order
//!   and each shard's engine seed forks from the cluster seed, so the
//!   concatenated cluster trace is byte-identical across runs of the same
//!   seed, crash storms included.
//! * **Conservation** — [`ClusterStats::check_conservation`]: every
//!   admitted request terminates on exactly one shard, is visibly pending,
//!   or is a counted gateway drop; a re-routed request is counted once.
//! * **Paper-faithful scheduling** — the gateway batch model
//!   ([`run_photo_batch`], experiment E8) reuses LERFA + SRFE and the
//!   op-counted CPU model unchanged; sharding shrinks the serial per-shard
//!   control plane (probe, schedule, transmit) while service stays
//!   parallel.
//!
//! ```
//! use aorta_cluster::{ClusterConfig, ShardManager};
//! use aorta_device::PervasiveLab;
//! use aorta_sim::SimDuration;
//!
//! let lab = PervasiveLab::with_sizes(8, 12, 0)
//!     .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
//! let mut cluster = ShardManager::new(ClusterConfig::seeded(7, 4), lab);
//! cluster
//!     .execute_sql(
//!         r#"CREATE AQ snap AS SELECT photo(c.ip, s.loc, "p")
//!            FROM sensor s, camera c
//!            WHERE s.accel_x > 500 AND coverage(c.id, s.loc)"#,
//!     )
//!     .unwrap();
//! cluster.run_for(SimDuration::from_mins(2));
//! cluster.stats().check_conservation().unwrap();
//! ```

#![warn(missing_docs)]

mod batch;
mod cluster;
mod partition;
mod stats;

pub use batch::{run_photo_batch, BatchConfig, BatchOutcome, ShardBatchReport};
pub use cluster::{
    metrics_demo, ClusterConfig, FailoverConfig, FailoverEvent, ShardManager, WalClusterConfig,
    WalReport,
};
pub use partition::{owner_of, rendezvous_owner, stripe_of, PartitionPolicy};
pub use stats::ClusterStats;
