//! Fleet partitioning: which shard owns which device.
//!
//! Two policies, matching the two natural keys a pervasive deployment has:
//! physical placement (lab-floor regions keep a mote and the cameras that
//! cover it co-resident, so cross-shard reroutes are the exception) and
//! identity (rendezvous hashing spreads any fleet evenly with no geometry,
//! at the price of routinely needing the gateway for coverage).

use aorta_device::DeviceId;

/// How the cluster assigns devices (and, for the gateway batch model,
/// photo targets) to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Slice the lab floor into `k` equal-width stripes along the x axis;
    /// a device belongs to the stripe its location falls in. Devices with
    /// no physical location (phones) are striped by index instead.
    RegionStripes,
    /// Rendezvous (highest-random-weight) hashing over `(seed, shard,
    /// device)`: every device independently picks the shard with the
    /// highest hash weight, so shard counts can change without reshuffling
    /// more than `1/k` of the fleet.
    Rendezvous,
}

/// The stripe `[0, shards)` an x coordinate falls in on a floor of the
/// given width. Coordinates at or beyond the width clamp into the last
/// stripe, so every located device gets an owner.
pub fn stripe_of(x: f64, width: f64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    if width <= 0.0 || !x.is_finite() {
        return 0;
    }
    let s = ((x / width) * shards as f64).floor();
    (s.max(0.0) as usize).min(shards - 1)
}

/// SplitMix64 finalizer — the same mixer `SimRng` seeds with, reused here
/// as a stateless hash so rendezvous ownership needs no RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Rendezvous hash: the shard with the highest weight for this device.
pub fn rendezvous_owner(seed: u64, id: DeviceId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let device_key = mix(seed ^ ((id.kind() as u64) << 32 | id.index() as u64));
    (0..shards)
        .max_by_key(|&s| (mix(device_key ^ s as u64), std::cmp::Reverse(s)))
        .unwrap_or(0)
}

/// Resolves a device's owning shard under a policy. `location_x` is the
/// device's x coordinate when it has one; `fallback_index` breaks ties for
/// location-less devices under [`PartitionPolicy::RegionStripes`].
pub fn owner_of(
    policy: PartitionPolicy,
    seed: u64,
    id: DeviceId,
    location_x: Option<f64>,
    width: f64,
    fallback_index: usize,
    shards: usize,
) -> usize {
    match policy {
        PartitionPolicy::RegionStripes => match location_x {
            Some(x) => stripe_of(x, width, shards),
            None => fallback_index % shards,
        },
        PartitionPolicy::Rendezvous => rendezvous_owner(seed, id, shards),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_cover_the_floor_and_clamp() {
        assert_eq!(stripe_of(0.0, 8.0, 4), 0);
        assert_eq!(stripe_of(1.9, 8.0, 4), 0);
        assert_eq!(stripe_of(2.0, 8.0, 4), 1);
        assert_eq!(stripe_of(7.99, 8.0, 4), 3);
        assert_eq!(stripe_of(8.0, 8.0, 4), 3, "edge clamps into last stripe");
        assert_eq!(stripe_of(3.0, 8.0, 1), 0);
    }

    #[test]
    fn rendezvous_is_deterministic_and_spread() {
        let mut counts = [0usize; 4];
        for i in 0..64 {
            let s = rendezvous_owner(7, DeviceId::camera(i), 4);
            assert_eq!(s, rendezvous_owner(7, DeviceId::camera(i), 4));
            counts[s] += 1;
        }
        // A 64-device fleet over 4 shards should not collapse onto one.
        assert!(
            counts.iter().all(|&c| c >= 4),
            "rendezvous spread too skewed: {counts:?}"
        );
    }

    #[test]
    fn rendezvous_reshuffles_little_when_a_shard_is_added() {
        let moved = (0..100)
            .filter(|&i| {
                rendezvous_owner(3, DeviceId::sensor(i), 4)
                    != rendezvous_owner(3, DeviceId::sensor(i), 5)
            })
            .count();
        // The HRW property: only ~1/5 of devices move to the new shard.
        assert!(moved <= 40, "{moved} of 100 devices moved on 4->5 shards");
    }
}
