//! Gateway-level batch scheduling across shards (experiment E8).
//!
//! Models one dispatch round the way the engine actually performs it, but
//! at cluster scale: each shard's gateway thread runs a **serial control
//! plane** — probe every local camera over the real link models (a dead
//! camera costs the full per-kind probe timeout), compute a LERFA + SRFE
//! schedule with op-counted CPU time (§5), and transmit one command
//! exchange per assignment — after which the cameras service their lanes
//! in parallel. This additivity is faithful to §4/§5: candidate devices
//! are locked for the whole assignment phase, so no action starts until
//! the shard's schedule is fixed and transmitted. Shards run concurrently;
//! the cluster makespan is the slowest shard.
//!
//! Cross-shard failover appears as a second wave: when a shard's entire
//! camera block is down (a shard-local crash storm), the gateway learns of
//! the exhaustion once that shard's probe pass completes and re-routes the
//! stranded requests to the sibling offering the cheapest eligible camera,
//! which schedules them after its own wave.
//!
//! Everything derives from the configured seed, so the whole outcome —
//! rendered by [`BatchOutcome::render`] — is byte-identical across runs.

use aorta_device::{DeviceId, DeviceKind, PervasiveLab, PhotoSize};
use aorta_net::{Channel, DeviceRegistry, Message, ProbeOutcome, Prober};
use aorta_sched::{run_algorithm, Algorithm, CameraPhotoModel, CostModel, Instance};
use aorta_sim::{CpuModel, SimDuration, SimRng, SimTime};

use crate::partition::stripe_of;

/// Parameters of one gateway batch round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Photo requests *n* (targets drawn uniformly over the lab floor).
    pub requests: usize,
    /// Cameras *m*, mounted in a row along the lab's x axis.
    pub cameras: usize,
    /// Shards *k*; cameras and targets partition into x-axis stripes.
    pub shards: usize,
    /// Seed for targets, link jitter, and scheduling tie-breaks.
    pub seed: u64,
    /// Cameras `0..crashed_cameras` are down for the whole round — with
    /// striped partitioning this is a shard-local crash storm (camera
    /// mounts are ordered by x, so low indices fill the low stripes).
    pub crashed_cameras: usize,
}

/// Per-shard timing breakdown of one batch round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBatchReport {
    /// Shard ID.
    pub shard: usize,
    /// Cameras owned (live + crashed).
    pub cameras: usize,
    /// Cameras that answered their probe.
    pub live_cameras: usize,
    /// Requests whose target falls in this shard's stripe.
    pub requests: usize,
    /// Requests adopted from siblings whose camera block was down.
    pub adopted: usize,
    /// Serial probe pass over every owned camera (timeouts included).
    pub probe_time: SimDuration,
    /// Op-counted LERFA + SRFE scheduling time (both waves).
    pub sched_time: SimDuration,
    /// Serial command-transmission time, one exchange per assignment.
    pub xmit_time: SimDuration,
    /// Parallel service makespan over this shard's camera lanes.
    pub service_time: SimDuration,
    /// When this shard's last request completes.
    pub makespan: SimDuration,
}

/// The outcome of one cluster batch round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-shard breakdowns, indexed by shard ID.
    pub per_shard: Vec<ShardBatchReport>,
    /// Cluster makespan: the slowest shard (shards run concurrently).
    pub makespan: SimDuration,
    /// Requests re-routed across shards by the gateway.
    pub rerouted: usize,
    /// Requests moved at admission by queue-depth saturation routing (the
    /// gateway tops overloaded shards off at an even quota).
    pub balanced: usize,
    /// Requests no shard could serve (every camera down).
    pub dropped: usize,
}

impl BatchOutcome {
    /// A canonical text rendering — the artifact E8's byte-identical
    /// determinism check compares.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.per_shard {
            out.push_str(&format!(
                "s{} cams={}/{} req={}+{} probe={} sched={} xmit={} service={} makespan={}\n",
                r.shard,
                r.live_cameras,
                r.cameras,
                r.requests,
                r.adopted,
                r.probe_time,
                r.sched_time,
                r.xmit_time,
                r.service_time,
                r.makespan,
            ));
        }
        out.push_str(&format!(
            "cluster makespan={} rerouted={} balanced={} dropped={}\n",
            self.makespan, self.rerouted, self.balanced, self.dropped
        ));
        out
    }
}

/// Runs one gateway batch round: `n` photo requests over `m` cameras
/// partitioned into `k` stripe shards.
pub fn run_photo_batch(cfg: &BatchConfig) -> BatchOutcome {
    assert!(cfg.shards > 0 && cfg.cameras > 0, "degenerate batch");
    let k = cfg.shards;
    let width = PervasiveLab::ROOM.0;
    let lab = PervasiveLab::with_sizes(cfg.cameras, 0, 0).with_reliable_cameras();
    let mut root = SimRng::seed(cfg.seed);
    let targets = lab.random_floor_targets(cfg.requests, &mut root.fork(1));

    // Partition cameras and targets into x stripes.
    let mut shard_cams: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, cam) in lab.cameras.iter().enumerate() {
        shard_cams[stripe_of(cam.mount().x, width, k)].push(i);
    }
    let mut shard_reqs: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (r, t) in targets.iter().enumerate() {
        shard_reqs[stripe_of(t.x, width, k)].push(r);
    }

    // Queue-depth saturation routing at admission: uniform targets still
    // land unevenly across stripes, and the cluster makespan is set by the
    // slowest shard, so the gateway levels predicted shard makespans before
    // dispatch. The prediction reuses LERFA + SRFE itself on last-known
    // status (the same planner the shard will run — no probe is spent
    // here, and a fresh seed-derived rng keeps the estimate a pure
    // function of the request set). While moving one request off the
    // slowest shard strictly lowers the pairwise max, move the one that
    // helps most: per sibling, the request it can serve cheapest.
    let cpu = CpuModel::paper_notebook();
    let full_models: Vec<Option<CameraPhotoModel>> = (0..k)
        .map(|s| {
            (!shard_cams[s].is_empty()).then(|| {
                let cams = shard_cams[s]
                    .iter()
                    .map(|&c| lab.cameras[c].clone())
                    .collect();
                CameraPhotoModel::new(cams, &targets, PhotoSize::Medium)
            })
        })
        .collect();
    // cheapest[r][s]: estimated micros for request r's cheapest camera on
    // shard s (None when the shard owns no cameras).
    let cheapest: Vec<Vec<Option<u64>>> = (0..targets.len())
        .map(|r| {
            full_models
                .iter()
                .map(|m| {
                    m.as_ref().map(|model| {
                        (0..model.cameras().len())
                            .map(|d| model.cost(r, d, &model.initial_status(d)).as_micros())
                            .min()
                            .expect("model has cameras")
                    })
                })
                .collect()
        })
        .collect();
    // Predicted shard makespan: probe pass + op-counted scheduling +
    // per-assignment command exchange + parallel service, in micros.
    const EXCHANGE_EST_MICROS: u64 = 5_000;
    let est_shard = |s: usize, reqs: &[usize]| -> u64 {
        let m = shard_cams[s].len();
        let probe = m as u64 * EXCHANGE_EST_MICROS;
        if m == 0 || reqs.is_empty() {
            return probe;
        }
        let cams: Vec<_> = shard_cams[s]
            .iter()
            .map(|&c| lab.cameras[c].clone())
            .collect();
        let wave_targets: Vec<_> = reqs.iter().map(|&r| targets[r]).collect();
        let model = CameraPhotoModel::new(cams, &wave_targets, PhotoSize::Medium);
        let inst = Instance::fully_eligible(wave_targets.len(), m);
        let mut rng = SimRng::seed(cfg.seed ^ 0xE571_AA00).fork(s as u64);
        let res = run_algorithm(&Algorithm::LerfaSrfe, &inst, &model, &cpu, &mut rng);
        probe
            + res.sched_time.as_micros()
            + reqs.len() as u64 * EXCHANGE_EST_MICROS
            + res.service_makespan.as_micros()
    };
    // Two balancing phases. First, gap-halving rounds: while the predicted
    // spread between the slowest and fastest shard is material, shift a
    // batch of requests sized to close half the gap (the requests the
    // destination serves cheapest). Then a hill-climb polish: move single
    // requests off the slowest shard's critical lane while that strictly
    // lowers the pairwise max — bulk rounds equalize coarsely, single
    // moves then shave the critical lane the bulk metric can't see.
    let mut balanced = 0usize;
    if k > 1 {
        let mut est: Vec<u64> = (0..k).map(|s| est_shard(s, &shard_reqs[s])).collect();
        for _ in 0..24 {
            let Some(src) = (0..k)
                .filter(|&s| shard_reqs[s].len() > 1 && !shard_cams[s].is_empty())
                .max_by_key(|&s| (est[s], std::cmp::Reverse(s)))
            else {
                break;
            };
            let Some(dst) = (0..k)
                .filter(|&t| t != src && !shard_cams[t].is_empty())
                .min_by_key(|&t| (est[t], t))
            else {
                break;
            };
            let gap = est[src].saturating_sub(est[dst]);
            if gap < 10 * EXCHANGE_EST_MICROS {
                break;
            }
            let per_req = (est[src] / shard_reqs[src].len() as u64).max(1);
            let batch = (((gap / 2) / per_req).max(1) as usize).min(shard_reqs[src].len() - 1);
            let mut order: Vec<usize> = (0..shard_reqs[src].len()).collect();
            order.sort_by_key(|&p| (cheapest[shard_reqs[src][p]][dst], p));
            let mut take = order[..batch].to_vec();
            take.sort_unstable_by(|a, b| b.cmp(a));
            for p in take {
                let r = shard_reqs[src].remove(p);
                shard_reqs[dst].push(r);
                balanced += 1;
            }
            est[src] = est_shard(src, &shard_reqs[src]);
            est[dst] = est_shard(dst, &shard_reqs[dst]);
        }
        for _ in 0..8 * k + 64 {
            let Some(src) = (0..k)
                .filter(|&s| shard_reqs[s].len() > 1 && !shard_cams[s].is_empty())
                .max_by_key(|&s| (est[s], std::cmp::Reverse(s)))
            else {
                break;
            };
            let cur_max = est[src];
            // Only removals that shorten src's critical lane matter (every
            // removal shaves one command exchange; demand more than that).
            let mut reducing: Vec<(u64, usize)> = shard_reqs[src]
                .iter()
                .enumerate()
                .filter_map(|(pos, _)| {
                    let mut minus = shard_reqs[src].clone();
                    minus.remove(pos);
                    let v = est_shard(src, &minus);
                    (v + 2 * EXCHANGE_EST_MICROS < cur_max).then_some((v, pos))
                })
                .collect();
            reducing.sort();
            reducing.truncate(16);
            // Best move: (resulting pairwise max, dest, pos), minimized.
            let mut best: Option<(u64, usize, usize)> = None;
            for &(new_src, pos) in &reducing {
                let moved = shard_reqs[src][pos];
                for t in 0..k {
                    if t == src || shard_cams[t].is_empty() || cheapest[moved][t].is_none() {
                        continue;
                    }
                    let mut dst_plus = shard_reqs[t].clone();
                    dst_plus.push(moved);
                    let pair = new_src.max(est_shard(t, &dst_plus));
                    if pair < cur_max && best.is_none_or(|b| (pair, t, pos) < b) {
                        best = Some((pair, t, pos));
                    }
                }
            }
            let Some((_, t, pos)) = best else { break };
            let r = shard_reqs[src].remove(pos);
            shard_reqs[t].push(r);
            est[src] = est_shard(src, &shard_reqs[src]);
            est[t] = est_shard(t, &shard_reqs[t]);
            balanced += 1;
        }
    }

    // Serial probe pass per shard over the real communication layer: live
    // cameras cost a probe round-trip, dead ones the full probe timeout.
    let mut live: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut probe_time = vec![SimDuration::ZERO; k];
    for s in 0..k {
        let mut registry = DeviceRegistry::new();
        for &c in &shard_cams[s] {
            let id = registry.register(lab.cameras[c].clone().into(), SimTime::ZERO);
            if c < cfg.crashed_cameras {
                registry.set_online(id, false);
            }
        }
        let mut prober = Prober::new();
        let mut rng = root.fork(0x9B0 + s as u64);
        for &c in &shard_cams[s] {
            let id = DeviceId::camera(c as u32);
            let now = SimTime::ZERO + probe_time[s];
            let (outcome, elapsed) = prober.probe_timed(&mut registry, id, now, &mut rng);
            probe_time[s] += elapsed;
            if matches!(outcome, ProbeOutcome::Available { .. }) {
                live[s].push(c);
            }
        }
    }

    // Cross-shard failover: a shard with no live camera strands its whole
    // stripe; the gateway re-routes each stranded request to the sibling
    // whose cheapest eligible camera minimizes the estimated photo cost.
    // Those requests arrive once the dead shard's probe pass has finished.
    let sibling_models: Vec<Option<CameraPhotoModel>> = (0..k)
        .map(|s| {
            (!live[s].is_empty()).then(|| {
                let cams = live[s].iter().map(|&c| lab.cameras[c].clone()).collect();
                CameraPhotoModel::new(cams, &targets, PhotoSize::Medium)
            })
        })
        .collect();
    let mut adopted: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut adopted_arrival = vec![SimDuration::ZERO; k];
    let mut rerouted = 0usize;
    let mut dropped = 0usize;
    for s in 0..k {
        if !live[s].is_empty() {
            continue;
        }
        for &r in &shard_reqs[s] {
            let mut best: Option<(SimDuration, usize)> = None;
            for (t, model) in sibling_models.iter().enumerate() {
                let Some(model) = model else { continue };
                let cheapest = (0..model.cameras().len())
                    .map(|d| model.cost(r, d, &model.initial_status(d)))
                    .min()
                    .expect("live shard has cameras");
                if best.is_none_or(|b| (cheapest, t) < b) {
                    best = Some((cheapest, t));
                }
            }
            match best {
                Some((_, t)) => {
                    rerouted += 1;
                    adopted[t].push(r);
                    adopted_arrival[t] = adopted_arrival[t].max(probe_time[s]);
                }
                None => dropped += 1,
            }
        }
    }

    // Per-shard waves: schedule, transmit, service.
    let registry = DeviceRegistry::new();
    let camera_link = registry.link(DeviceKind::Camera).clone();
    let mut per_shard = Vec::with_capacity(k);
    let mut cluster_makespan = SimDuration::ZERO;
    for s in 0..k {
        // Wave 1's scheduler rng is derived exactly as the admission-time
        // predictor derives it, so the gateway's balancing decisions are
        // made against the very schedule the shard will run.
        let mut wave_no: u64 = 0;
        let mut xmit_rng = root.fork(0xA40 + s as u64);
        let mut sched_time = SimDuration::ZERO;
        let mut xmit_time = SimDuration::ZERO;
        let mut service_time = SimDuration::ZERO;
        let cams: Vec<_> = live[s].iter().map(|&c| lab.cameras[c].clone()).collect();

        let mut wave = |reqs: &[usize],
                        sched_time: &mut SimDuration,
                        xmit_time: &mut SimDuration,
                        service_time: &mut SimDuration|
         -> SimDuration {
            if reqs.is_empty() || cams.is_empty() {
                return SimDuration::ZERO;
            }
            let wave_targets: Vec<_> = reqs.iter().map(|&r| targets[r]).collect();
            let model = CameraPhotoModel::new(cams.clone(), &wave_targets, PhotoSize::Medium);
            let inst = Instance::fully_eligible(wave_targets.len(), cams.len());
            let mut rng = SimRng::seed(cfg.seed ^ 0xE571_AA00).fork(s as u64 + wave_no * k as u64);
            wave_no += 1;
            let result = run_algorithm(&Algorithm::LerfaSrfe, &inst, &model, &cpu, &mut rng);
            // One command exchange per assignment: the gateway thread sends
            // the photo command and waits for the device's accept before
            // issuing the next (§4's synchronized dispatch).
            let channel = Channel::new(camera_link.clone());
            let mut xmit = SimDuration::ZERO;
            for (i, _) in reqs.iter().enumerate() {
                let command = Message::Photo {
                    target: model.aim(0, i),
                    size: PhotoSize::Medium,
                };
                if let Some(d) = channel.send(&command, &mut xmit_rng) {
                    xmit += d;
                }
                if let Some(d) = channel.send(&Message::PhotoAck { duration_us: 0 }, &mut xmit_rng)
                {
                    xmit += d;
                }
            }
            *sched_time += result.sched_time;
            *xmit_time += xmit;
            *service_time += result.service_makespan;
            result.sched_time + xmit + result.service_makespan
        };

        let wave1 = wave(
            &shard_reqs[s],
            &mut sched_time,
            &mut xmit_time,
            &mut service_time,
        );
        let wave1_end = probe_time[s] + wave1;
        let makespan = if adopted[s].is_empty() {
            wave1_end
        } else {
            let wave2 = wave(
                &adopted[s],
                &mut sched_time,
                &mut xmit_time,
                &mut service_time,
            );
            wave1_end.max(adopted_arrival[s]) + wave2
        };
        cluster_makespan = cluster_makespan.max(makespan);
        per_shard.push(ShardBatchReport {
            shard: s,
            cameras: shard_cams[s].len(),
            live_cameras: live[s].len(),
            requests: shard_reqs[s].len(),
            adopted: adopted[s].len(),
            probe_time: probe_time[s],
            sched_time,
            xmit_time,
            service_time,
            makespan,
        });
    }

    BatchOutcome {
        per_shard,
        makespan: cluster_makespan,
        rerouted,
        balanced,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, crashed: usize) -> BatchConfig {
        BatchConfig {
            requests: 96,
            cameras: 24,
            shards,
            seed: 0xE8,
            crashed_cameras: crashed,
        }
    }

    #[test]
    fn batch_is_deterministic() {
        let a = run_photo_batch(&cfg(4, 6));
        let b = run_photo_batch(&cfg(4, 6));
        assert_eq!(a.render(), b.render());
        assert!(!a.render().is_empty());
    }

    #[test]
    fn sharding_shrinks_the_serial_control_plane() {
        let one = run_photo_batch(&cfg(1, 0));
        let four = run_photo_batch(&cfg(4, 0));
        assert_eq!(one.rerouted, 0);
        assert_eq!(four.rerouted, 0);
        let serial = |o: &BatchOutcome| {
            o.per_shard
                .iter()
                .map(|r| r.probe_time + r.sched_time + r.xmit_time)
                .max()
                .unwrap()
        };
        assert!(
            serial(&four) < serial(&one),
            "4-shard control plane {} should beat 1-shard {}",
            serial(&four),
            serial(&one)
        );
    }

    #[test]
    fn sharding_wins_once_the_control_plane_dominates() {
        // Below ~300 requests the monolith's serial control plane is cheap
        // enough that partitioning (which restricts camera choice) loses;
        // at this scale the cluster should win outright.
        let big = |shards| BatchConfig {
            requests: 320,
            cameras: 80,
            shards,
            seed: 0xE8,
            crashed_cameras: 0,
        };
        let one = run_photo_batch(&big(1));
        let four = run_photo_batch(&big(4));
        assert!(
            four.makespan < one.makespan,
            "4-shard makespan {} should beat 1-shard {}",
            four.makespan,
            one.makespan
        );
        assert!(four.balanced > 0, "gateway should level the stripes");
    }

    #[test]
    fn dead_shard_requests_fail_over_to_siblings() {
        // Crash shard 0's whole camera block (cameras are x-ordered, so
        // the first quarter of indices is exactly stripe 0).
        let out = run_photo_batch(&cfg(4, 6));
        assert_eq!(out.per_shard[0].live_cameras, 0);
        assert_eq!(out.dropped, 0, "siblings were available");
        assert_eq!(out.rerouted, out.per_shard[0].requests);
        let adopted: usize = out.per_shard.iter().map(|r| r.adopted).sum();
        assert_eq!(adopted, out.rerouted, "every reroute is adopted once");
    }

    #[test]
    fn all_cameras_down_drops_everything_counted() {
        let out = run_photo_batch(&cfg(2, 24));
        assert_eq!(out.rerouted, 0);
        assert_eq!(out.dropped, 96);
    }
}
