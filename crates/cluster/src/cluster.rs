//! The shard manager and routing gateway.
//!
//! A [`ShardManager`] owns *k* independent [`Aorta`] engines, each over a
//! disjoint slice of the device fleet, and drives them on **one** virtual
//! clock: at every step it advances the shard whose next pending work has
//! the smallest `(SimTime, shard_id)`, which serializes the per-shard event
//! queues into a single deterministic global order — identical seeds yield
//! byte-identical cluster traces, exactly as for a standalone engine.
//!
//! The gateway role is folded into the manager: DDL (`CREATE AQ`,
//! `CREATE ACTION`) is broadcast to every shard, so any shard can detect
//! events over its own devices and serve adopted requests; when a shard's
//! candidate set is exhausted (crash storms, or simply no covering device
//! in its region) the shard escalates the request and the gateway re-routes
//! it to the sibling offering the cheapest eligible device. Above a
//! configurable backlog imbalance the gateway also migrates device
//! ownership between shards — only at a safe point (no queued execution,
//! no lock held, no action physically in progress).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use aorta_core::{
    genesis_fingerprint, recover_engine, restore_from_image, ActionRequest, Aorta, CustomHandler,
    EngineConfig, EngineError, ExecOutput, GenesisSpec,
};
use aorta_device::{DeviceId, DeviceKind, PervasiveLab};
use aorta_net::{ship_bytes, DeviceRegistry, EpochFence, RetryPolicy, ShipConfig};
use aorta_obs::{MetricsRegistry, SharedMetrics, SpanKind};
use aorta_sim::{FaultEvent, FaultPlan, SimDuration, SimRng, SimTime, TraceBuffer};
use aorta_wal::{
    FileStore, LogStore, MemStore, SnapshotImage, WalHandle, WalManager, WalRecord, WalStats,
};

use crate::partition::{owner_of, PartitionPolicy};
use crate::stats::ClusterStats;

/// Cluster-level tunables. Per-shard engine parameters come from the
/// `engine` template; each shard gets its own seed forked from `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Master seed: shard engine seeds and partition hashing fork from it.
    pub seed: u64,
    /// Number of shards *k* (≥ 1).
    pub shards: usize,
    /// How devices are assigned to shards.
    pub partition: PartitionPolicy,
    /// Backlog gap (max shard pending minus min shard pending, in
    /// requests) above which the gateway migrates device ownership.
    /// `u64::MAX` disables rebalancing.
    pub imbalance_threshold: u64,
    /// Most devices migrated per rebalance decision.
    pub migration_batch: usize,
    /// Template engine configuration; `seed` and `escalate_exhausted` are
    /// overridden per shard.
    pub engine: EngineConfig,
    /// Durability: when set, every shard writes a WAL and crashed shards
    /// are recovered in place. `None` (the default) runs without logs —
    /// a process-crashed shard then stays dead.
    pub wal: Option<WalClusterConfig>,
    /// Cross-host failover: when set (and durability is on), a
    /// process-crashed shard is rebuilt on a *fresh host* from a shipped
    /// [`SnapshotImage`] instead of in place, behind epoch fencing and a
    /// parked-escalation queue. `None` (the default) keeps the in-place
    /// recovery path byte-identical to previous releases.
    pub failover: Option<FailoverConfig>,
    /// Worker threads for parallel shard stepping. `0` (the default) means
    /// auto: one thread per host core. `1` forces the sequential oracle.
    /// Thread count never changes a single byte of any trace or stat — it
    /// only changes how fast the same bytes are produced (see
    /// [`ShardManager::run_until`]).
    pub threads: usize,
}

/// Cross-host failover tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverConfig {
    /// Simulated network parameters for shipping the snapshot image to the
    /// adopting host (chunking, loss, duplication, reordering, bandwidth).
    pub ship: ShipConfig,
    /// Fixed rebuild cost on the adopting host (process start + replay),
    /// added to the shipment's transfer time to give the degraded window
    /// its length on the virtual clock.
    pub rebuild_delay: SimDuration,
    /// Backoff schedule for parked escalations: every gateway re-injection
    /// waits `backoff_base × 2^(attempt-1)` plus seeded jitter instead of
    /// retrying immediately (the same policy the probe layer uses).
    pub retry: RetryPolicy,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            ship: ShipConfig::default(),
            rebuild_delay: SimDuration::from_millis(100),
            retry: RetryPolicy::new(
                6,
                SimDuration::from_millis(50),
                SimDuration::from_millis(25),
            ),
        }
    }
}

/// Durability tunables for a WAL-enabled cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalClusterConfig {
    /// Take a snapshot of a shard every this many appended log frames
    /// (plus forced barrier snapshots at every device migration).
    pub snapshot_every: usize,
    /// Directory for on-disk logs (`shard-<s>.wal`); `None` keeps the logs
    /// in memory — same records, same recovery, no filesystem.
    pub dir: Option<PathBuf>,
}

impl Default for WalClusterConfig {
    fn default() -> Self {
        WalClusterConfig {
            snapshot_every: 512,
            dir: None,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 42,
            shards: 2,
            partition: PartitionPolicy::RegionStripes,
            imbalance_threshold: 16,
            migration_batch: 1,
            engine: EngineConfig::default(),
            wal: None,
            failover: None,
            threads: 0,
        }
    }
}

impl ClusterConfig {
    /// The default configuration with a given seed and shard count.
    pub fn seeded(seed: u64, shards: usize) -> Self {
        ClusterConfig {
            seed,
            shards,
            ..ClusterConfig::default()
        }
    }

    /// Sets the partition policy, builder style.
    pub fn with_partition(mut self, partition: PartitionPolicy) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the rebalance threshold, builder style.
    pub fn with_imbalance_threshold(mut self, threshold: u64) -> Self {
        self.imbalance_threshold = threshold;
        self
    }

    /// Enables per-shard write-ahead logging (in-memory stores), builder
    /// style.
    pub fn with_wal(mut self, snapshot_every: usize) -> Self {
        self.wal = Some(WalClusterConfig {
            snapshot_every,
            dir: None,
        });
        self
    }

    /// Enables per-shard write-ahead logging with on-disk stores under
    /// `dir`, builder style.
    pub fn with_wal_dir(mut self, snapshot_every: usize, dir: impl Into<PathBuf>) -> Self {
        self.wal = Some(WalClusterConfig {
            snapshot_every,
            dir: Some(dir.into()),
        });
        self
    }

    /// Enables cross-host failover, builder style. Requires a WAL (the
    /// snapshot image is cut from the shard's log); [`ShardManager::new`]
    /// panics otherwise.
    pub fn with_failover(mut self, failover: FailoverConfig) -> Self {
        self.failover = Some(failover);
        self
    }

    /// Sets the worker-thread count for parallel shard stepping, builder
    /// style. `0` means auto (one per host core); `1` is the sequential
    /// oracle every threaded run is byte-compared against.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker-thread count after resolving `0` (auto) against the
    /// host's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Per-shard durability state: log manager + genesis image, plus recovery
/// bookkeeping. All of it lives on a channel separate from the simulation
/// (its own metrics registry, no trace/stats writes), so a WAL-enabled
/// cluster stays byte-identical to an unlogged one.
struct Durability {
    managers: Vec<WalManager<Box<Aorta>>>,
    specs: Vec<GenesisSpec>,
    fingerprints: Vec<u64>,
    /// WAL-owned metrics registry (append/recovery series). Deliberately
    /// not merged into the cluster's deterministic snapshot.
    obs: SharedMetrics,
    recoveries: u64,
    records_replayed: u64,
    /// Host wall-clock milliseconds per recovery (benchmark reporting
    /// only — never feeds back into the simulation).
    recovery_wall_ms: Vec<u64>,
}

/// A durability report for benchmarks and introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReport {
    /// Per-shard log stream counters.
    pub per_shard: Vec<WalStats>,
    /// Per-shard snapshots taken (cadence + migration barriers).
    pub snapshots: Vec<u64>,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// Log records replayed across all recoveries.
    pub records_replayed: u64,
    /// Host wall-clock milliseconds per recovery.
    pub recovery_wall_ms: Vec<u64>,
}

/// Cross-host failover runtime state (present only when configured).
struct Failover {
    config: FailoverConfig,
    /// Gateway-owned RNG (image shipping, backoff jitter), forked from the
    /// cluster seed *after* every shard seed — adding it never perturbs
    /// the shard streams.
    rng: SimRng,
    /// One fence per shard slot: the incarnation epoch the gateway believes
    /// current, plus the count of stale-epoch messages it refused.
    fences: Vec<EpochFence>,
    /// The host currently running each shard slot (hosts `0..k` at birth;
    /// every failover adopts on a fresh host id).
    hosts: Vec<u32>,
    next_host: u32,
    /// Escalations parked at the gateway awaiting backoff delivery.
    waiting: Vec<Parked>,
    next_seq: u64,
    /// In-flight rebuilds: the replacement engine is ready but not adopted
    /// until the degraded window (`ready_at`) elapses on the virtual clock.
    rebuilds: Vec<Option<PendingRebuild>>,
    events: Vec<FailoverEvent>,
}

/// One escalation parked at the gateway (satellite of the backoff fix: the
/// gateway never re-injects immediately when failover is on).
struct Parked {
    request: ActionRequest,
    /// Shard slot that escalated the request.
    from: usize,
    /// Epoch of `from`'s incarnation when the gateway admitted the
    /// handoff (auditing; admission is where the fence is enforced).
    #[allow(dead_code)]
    epoch: u64,
    /// Delivery attempts scheduled so far (1 = first backoff wait).
    attempt: u32,
    next_at: SimTime,
    /// Admission order, to break `next_at` ties deterministically.
    seq: u64,
}

/// A replacement engine rebuilt on a fresh host, waiting out the degraded
/// window before adoption.
struct PendingRebuild {
    engine: Box<Aorta>,
    ready_at: SimTime,
    detected_at: SimTime,
    old_host: u32,
    new_host: u32,
    bytes_shipped: u64,
    ship_rounds: u32,
    replayed: u64,
}

/// One completed cross-host failover, for benchmarks and introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    /// Shard slot that failed over.
    pub shard: usize,
    /// Host that died.
    pub old_host: u32,
    /// Fresh host the shard was rebuilt on.
    pub new_host: u32,
    /// The new incarnation's epoch (old epoch + 1).
    pub epoch: u64,
    /// Virtual instant the process crash was detected.
    pub detected_at: SimTime,
    /// Virtual instant the rebuilt shard was adopted (end of the degraded
    /// window).
    pub ready_at: SimTime,
    /// Encoded snapshot-image size shipped to the adopting host.
    pub bytes_shipped: u64,
    /// Transfer rounds the shipment needed (1 = no loss).
    pub ship_rounds: u32,
    /// Log records the adopting host replayed.
    pub records_replayed: u64,
}

impl FailoverEvent {
    /// Length of the degraded window on the virtual clock.
    pub fn degraded_window(&self) -> SimDuration {
        self.ready_at - self.detected_at
    }
}

/// *k* engines over a partitioned fleet, stepped on one virtual clock,
/// with gateway routing, cross-shard failover, and rebalancing.
pub struct ShardManager {
    config: ClusterConfig,
    shards: Vec<Aorta>,
    now: SimTime,
    /// Gateway-level decisions (reroutes, drops, migrations).
    trace: TraceBuffer,
    rerouted: u64,
    gateway_dropped: u64,
    gateway_expired: u64,
    migrations: u64,
    /// Gateway-level metrics (`None` unless the engine template enables
    /// observability; each shard then carries its own registry too).
    obs: Option<SharedMetrics>,
    /// WAL + snapshot state when durability is on.
    durability: Option<Durability>,
    /// Cross-host failover state when configured.
    failover: Option<Failover>,
    /// Active inter-shard blackout windows `(start, end, from, to)` from
    /// injected [`FaultEvent::Partition`] events. Asymmetric: a window
    /// blocks gateway deliveries `from → to` only.
    partitions: Vec<(SimTime, SimTime, u32, u32)>,
}

/// A cached agenda of per-shard next-event times for the sequential loop:
/// a lazy min-heap keyed by `(next_event_time, shard_id)` replacing the
/// O(k)-per-step linear scan. `slot[s]` holds the time currently standing
/// for shard `s` (`None` = consumed, crashed, or past the cutoff); heap
/// entries superseded by a refresh are dropped on pop.
struct Agenda {
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    slot: Vec<Option<SimTime>>,
    cutoff: SimTime,
}

impl Agenda {
    /// An agenda over every live shard with pending work at or before
    /// `cutoff`.
    fn build(shards: &[Aorta], cutoff: SimTime) -> Self {
        let mut agenda = Agenda {
            heap: BinaryHeap::with_capacity(shards.len() + 4),
            slot: vec![None; shards.len()],
            cutoff,
        };
        for s in 0..shards.len() {
            agenda.refresh(s, shards);
        }
        agenda
    }

    /// Re-reads shard `s`'s next event time and (re)enters it, superseding
    /// any stale heap entry. Must be called after every mutation that can
    /// change a shard's timing: its own step, in-place recovery, rebuild
    /// adoption. (Gateway request injection only touches the dispatch
    /// operators, never the event queue, so it needs no refresh.)
    fn refresh(&mut self, s: usize, shards: &[Aorta]) {
        let cur = (!shards[s].is_crashed())
            .then(|| shards[s].next_event_time())
            .flatten()
            .filter(|&t| t <= self.cutoff);
        if self.slot[s] != cur {
            self.slot[s] = cur;
            if let Some(t) = cur {
                self.heap.push(Reverse((t, s)));
            }
        }
    }

    /// Pops the earliest `(time, shard)` pair, dropping superseded entries.
    /// The caller owns the consumed entry: either step the shard and
    /// [`refresh`](Self::refresh) it, or [`restore`](Self::restore) it.
    fn pop_earliest(&mut self, shards: &[Aorta]) -> Option<(SimTime, usize)> {
        while let Some(Reverse((t, s))) = self.heap.pop() {
            if self.slot[s] != Some(t) {
                continue;
            }
            debug_assert_eq!(
                shards[s].next_event_time(),
                Some(t),
                "agenda missed a timing mutation of shard {s}"
            );
            self.slot[s] = None;
            return Some((t, s));
        }
        None
    }

    /// Returns an entry consumed by [`pop_earliest`](Self::pop_earliest)
    /// unstepped (a gateway timer won the instant).
    fn restore(&mut self, t: SimTime, s: usize) {
        self.slot[s] = Some(t);
        self.heap.push(Reverse((t, s)));
    }
}

// Compile-time thread-safety audit (see the matching assertion on `Aorta`
// in aorta-core): the parallel runner fans per-shard state out across
// `std::thread::scope` workers, so the engines must be shareable (`Sync`)
// and their clones movable (`Send`); the manager itself — gateway, WAL
// managers, failover state — must stay `Send` so whole clusters can be
// driven from worker threads (the E13 benchmark does).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Aorta>();
    assert_send::<Box<Aorta>>();
    assert_send::<ShardManager>();
};

impl ShardManager {
    /// Partitions `lab` across `config.shards` engines.
    ///
    /// Per-shard engine seeds are forked from the cluster seed, so the
    /// cluster as a whole is as deterministic as one engine; escalation is
    /// enabled on every shard when `k > 1` (with a single shard there is
    /// no sibling, and behaviour is identical to a standalone engine).
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` is zero.
    pub fn new(config: ClusterConfig, lab: PervasiveLab) -> Self {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        let k = config.shards;
        let width = PervasiveLab::ROOM.0;
        let mut registries: Vec<DeviceRegistry> = (0..k).map(|_| DeviceRegistry::new()).collect();
        let mut place = |sim: aorta_net::DeviceSim, x: Option<f64>, fallback: usize| {
            let s = owner_of(
                config.partition,
                config.seed,
                sim.id(),
                x,
                width,
                fallback,
                k,
            );
            registries[s].register(sim, SimTime::ZERO);
        };
        for (i, cam) in lab.cameras.iter().enumerate() {
            place(cam.clone().into(), Some(cam.mount().x), i);
        }
        for (i, mote) in lab.motes.iter().enumerate() {
            place(mote.clone().into(), Some(mote.location().x), i);
        }
        for (i, phone) in lab.phones.iter().enumerate() {
            place(phone.clone().into(), None, i);
        }

        let mut seeder = SimRng::seed(config.seed);
        let mut shards: Vec<Aorta> = Vec::with_capacity(k);
        let mut durability = config.wal.as_ref().map(|wal| {
            if let Some(dir) = &wal.dir {
                std::fs::create_dir_all(dir).expect("wal directory");
            }
            Durability {
                managers: Vec::with_capacity(k),
                specs: Vec::with_capacity(k),
                fingerprints: Vec::with_capacity(k),
                obs: SharedMetrics::new(),
                recoveries: 0,
                records_replayed: 0,
                recovery_wall_ms: Vec::new(),
            }
        });
        for (s, registry) in registries.into_iter().enumerate() {
            let mut engine_config = config.engine.clone();
            engine_config.seed = seeder.fork(s as u64).next_u64();
            engine_config.escalate_exhausted = k > 1;
            let genesis_registry = durability.is_some().then(|| registry.clone());
            let mut engine = Aorta::with_registry(engine_config.clone(), registry);
            // Incarnation identity: shard s starts on host s, epoch 1.
            // Pure metadata (excluded from digests and stats), so stamping
            // it unconditionally changes no byte of any existing artifact.
            engine.set_identity(s as u32, 1);
            if let Some(dur) = &mut durability {
                let wal = config.wal.as_ref().expect("durability implies wal config");
                let store: Box<dyn LogStore> = match &wal.dir {
                    Some(dir) => Box::new(
                        FileStore::create(dir.join(format!("shard-{s}.wal")))
                            .expect("wal file create"),
                    ),
                    None => Box::new(MemStore::new()),
                };
                let fingerprint = genesis_fingerprint(engine_config.seed, s as u64);
                let handle = WalHandle::record(store, Some(dur.obs.clone()), format!("s{s}"));
                handle.append(WalRecord::Genesis { fingerprint });
                engine.attach_wal(handle.clone());
                dur.managers
                    .push(WalManager::new(handle, wal.snapshot_every));
                dur.specs.push(GenesisSpec {
                    config: engine_config,
                    registry: genesis_registry.expect("cloned when durability is on"),
                    handlers: Vec::new(),
                });
                dur.fingerprints.push(fingerprint);
            }
            shards.push(engine);
        }

        // Forked after every shard seed, so enabling failover leaves the
        // shard RNG streams (and thus every existing artifact) untouched.
        let failover = config.failover.clone().map(|fc| {
            assert!(
                durability.is_some(),
                "failover requires a WAL: the snapshot image is cut from the shard's log"
            );
            Failover {
                config: fc,
                rng: seeder.fork(u64::MAX),
                fences: (0..k).map(|_| EpochFence::new(1)).collect(),
                hosts: (0..k as u32).collect(),
                next_host: k as u32,
                waiting: Vec::new(),
                next_seq: 0,
                rebuilds: (0..k).map(|_| None).collect(),
                events: Vec::new(),
            }
        });

        let obs = config.engine.observability.then(SharedMetrics::new);
        ShardManager {
            config,
            shards,
            now: SimTime::ZERO,
            trace: TraceBuffer::with_capacity(4096),
            rerouted: 0,
            gateway_dropped: 0,
            gateway_expired: 0,
            migrations: 0,
            obs,
            durability,
            failover,
            partitions: Vec::new(),
        }
    }

    /// Executes a statement on every shard (the gateway's admission path:
    /// queries and actions must exist cluster-wide so any shard can detect
    /// events on its devices or adopt an escalated request). Returns the
    /// first shard's output; all shards execute the same statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<Vec<ExecOutput>, EngineError> {
        let mut first = None;
        for shard in &mut self.shards {
            let out = shard.execute_sql(sql)?;
            if first.is_none() {
                first = Some(out);
            }
        }
        Ok(first.unwrap_or_default())
    }

    /// Stages a custom action handler on every shard (see
    /// [`Aorta::register_handler`]).
    ///
    /// Handlers are code, not state, so they cannot travel through the WAL;
    /// they are instead captured into each shard's genesis spec and
    /// re-staged when a crashed shard is rebuilt.
    pub fn register_handler(&mut self, name: &str, handler: CustomHandler) {
        for shard in &mut self.shards {
            shard.register_handler(name, handler.clone());
        }
        if let Some(dur) = &mut self.durability {
            for spec in &mut dur.specs {
                spec.handlers.push((name.to_string(), handler.clone()));
            }
        }
    }

    /// Splits a cluster-wide fault plan by device ownership and installs
    /// the slices. Crash/recover events go to the shard owning the device
    /// *now*; if the rebalancer later migrates that device, the stale
    /// events no-op harmlessly on the old shard (fault application checks
    /// registry membership). Global link events replicate to every shard.
    pub fn inject_faults(&mut self, plan: FaultPlan<DeviceId>) {
        // Partition events are cluster-scope: the gateway keeps the blackout
        // windows (engines no-op them) and refuses deliveries crossing an
        // active window. Plans without partitions leave this list empty and
        // routing byte-identical.
        for (at, event) in plan.iter() {
            if let FaultEvent::Partition { a, b, window } = *event {
                self.partitions.push((*at, *at + window, a, b));
            }
        }
        let owners: Vec<FaultPlan<DeviceId>> =
            plan.split_by(self.shards.len(), |d| self.shard_owning(*d).unwrap_or(0));
        for (shard, sub) in self.shards.iter_mut().zip(owners) {
            shard.inject_faults(sub);
        }
    }

    /// True when an active partition window blocks gateway deliveries
    /// `from → to` at the current virtual instant.
    fn blocked(&self, from: usize, to: usize) -> bool {
        let now = self.now;
        self.partitions.iter().any(|&(start, end, a, b)| {
            a as usize == from && b as usize == to && start <= now && now < end
        })
    }

    /// The shard currently owning `device`, if any.
    pub fn shard_owning(&self, device: DeviceId) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.registry().get(device).is_some())
    }

    /// Advances the shared virtual clock to `deadline`.
    ///
    /// Shards are interleaved in `(next_event_time, shard_id)` order: the
    /// shard with the earliest pending work runs first, ties break on the
    /// lower shard ID. After each step the gateway services that shard's
    /// escalations and checks the rebalance condition, so cross-shard
    /// failover happens at the same virtual instant the exhaustion did.
    ///
    /// When the configuration permits (`parallel_eligible`: several
    /// shards, several workers, no WAL, no failover, rebalancer off) and
    /// more than one worker thread is available, shards step **concurrently
    /// between cross-shard synchronization points** instead: the window up
    /// to the earliest cross-shard interaction (an escalation or a process
    /// crash — the only gateway-visible events in an eligible
    /// configuration) runs on clones in parallel, and the interaction
    /// itself is replayed through this sequential loop. The merged outcome
    /// is bit-for-bit identical to the sequential interleaving; only wall
    /// time changes. `ClusterConfig::with_threads(1)` keeps the sequential
    /// path as the oracle.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.parallel_eligible() {
            self.run_windows_parallel(deadline);
        } else {
            self.run_steps(deadline, deadline);
        }
        // Tail: every surviving shard coasts to the deadline (faults past
        // its last event may still be due), with the same crash/escalation
        // follow-ups a mid-run step gets — a crash or escalation landing
        // exactly at the deadline is recovered/routed, never stranded.
        for s in 0..self.shards.len() {
            self.shards[s].run_until(deadline);
            self.recover_if_crashed(s);
            self.route_escalated(s);
        }
        self.maybe_snapshots();
        self.now = deadline;
        self.gateway_tick();
    }

    /// Whether [`Self::run_until`] may execute windows on the thread pool.
    ///
    /// Parallel stepping requires every between-step gateway sweep to be a
    /// provable no-op unless a shard escalates or crashes (which trips the
    /// window back to the sequential oracle). That holds exactly when:
    ///
    /// - there is more than one shard and more than one worker thread;
    /// - durability is off — a WAL records the stepping slice boundaries
    ///   (`RunUntil` frames) and snapshot cadence, which are artifacts of
    ///   the sequential interleaving itself;
    /// - failover is off — gateway timers (parked deliveries, rebuild
    ///   adoptions) can fire between any two steps (failover already
    ///   requires a WAL; checked separately for clarity);
    /// - rebalancing is off — the imbalance check samples every shard's
    ///   backlog after every step.
    ///
    /// Ineligible configurations take the sequential path at any thread
    /// count, so thread count never changes their bytes either.
    fn parallel_eligible(&self) -> bool {
        self.shards.len() > 1
            && self.config.effective_threads() > 1
            && self.config.wal.is_none()
            && self.config.failover.is_none()
            && self.config.imbalance_threshold == u64::MAX
    }

    /// Parallel window driver: repeatedly clone the live shards, run the
    /// clones concurrently toward `deadline` under a shared tripwire, and
    /// either commit the clones (no shard escalated or crashed — the whole
    /// window was interaction-free, so the sequential interleaving would
    /// have produced exactly these per-shard states) or discard them and
    /// replay the prefix up to the earliest interaction through the
    /// sequential oracle, then try again from there.
    ///
    /// The tripwire carries the earliest violation instant in microseconds
    /// (`u64::MAX` = none): each clone stops before processing any work at
    /// or past it, and lowers it when it escalates or crashes. Because a
    /// clone keeps running while its pending work lies strictly below the
    /// wire, the final value is exactly the first instant the sequential
    /// interleaving would have seen a cross-shard interaction — replaying
    /// `(-∞, wire]` sequentially therefore reproduces the oracle's order,
    /// including `(event_time, shard_id)`-ordered same-instant batches and
    /// the gateway's routing at the interaction itself.
    fn run_windows_parallel(&mut self, deadline: SimTime) {
        // After this many consecutive tripped windows, finish the call
        // sequentially: interaction-dense phases (crash storms) would
        // otherwise pay a full clone fan-out per interaction.
        const MAX_TRIPPED_WINDOWS: u32 = 3;
        let mut tripped_windows = 0;
        loop {
            let live: Vec<usize> = (0..self.shards.len())
                .filter(|&s| {
                    !self.shards[s].is_crashed()
                        && self.shards[s]
                            .next_event_time()
                            .is_some_and(|t| t <= deadline)
                })
                .collect();
            if live.is_empty() {
                return; // nothing left below the deadline; the tail coasts
            }
            if tripped_windows >= MAX_TRIPPED_WINDOWS {
                self.run_steps(deadline, deadline);
                return;
            }
            let lanes = self.config.effective_threads().min(live.len());
            let mut lane_shards: Vec<Vec<usize>> = vec![Vec::new(); lanes];
            for (i, &s) in live.iter().enumerate() {
                lane_shards[i % lanes].push(s);
            }
            let tripwire = AtomicU64::new(u64::MAX);
            let shards = &self.shards;
            let clones: Vec<(usize, Box<Aorta>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = lane_shards
                    .into_iter()
                    .map(|lane| {
                        let tw = &tripwire;
                        scope.spawn(move || {
                            lane.into_iter()
                                .map(|s| {
                                    debug_assert_eq!(
                                        shards[s].escalated_backlog(),
                                        0,
                                        "window started with an undrained escalation buffer"
                                    );
                                    let mut clone = shards[s].fork_snapshot();
                                    clone.run_until_bounded(deadline, tw);
                                    (s, clone)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            let wire = tripwire.load(Ordering::Acquire);
            if wire == u64::MAX {
                // Interaction-free to the deadline: the clones *are* the
                // sequential outcome. Swap them in and let the tail finish.
                for (s, clone) in clones {
                    self.shards[s] = *clone;
                }
                return;
            }
            // Tripped: discard the clones and replay sequentially through
            // the interaction instant, then open the next window there.
            drop(clones);
            tripped_windows += 1;
            self.run_steps(deadline, SimTime::from_micros(wire));
        }
    }

    /// The sequential oracle loop: steps shards in `(next_event_time,
    /// shard_id)` order while their next pending work is at or before
    /// `cutoff`, interleaving gateway timers due by then. The pure
    /// sequential path passes `cutoff == deadline`; the parallel driver
    /// passes the tripped instant to replay an interaction prefix.
    ///
    /// Shard selection uses a cached agenda (a lazy min-heap keyed by
    /// `(next_event_time, shard_id)`) instead of an O(k) scan per step;
    /// entries are refreshed for the stepped shard and for any shard whose
    /// engine the gateway replaced (recovery, rebuild adoption) — the only
    /// mutations that can change a shard's next event time from outside
    /// its own step (gateway injections only touch dispatch operators).
    fn run_steps(&mut self, deadline: SimTime, cutoff: SimTime) {
        debug_assert!(cutoff <= deadline);
        let mut agenda = Agenda::build(&self.shards, cutoff);
        loop {
            let next = agenda.pop_earliest(&self.shards);
            // Gateway timers (rebuild adoptions, parked deliveries) share
            // the same clock; a shard step wins ties so escalations drain
            // before the gateway acts at the same instant.
            let gateway = self.next_gateway_time().filter(|&g| g <= cutoff);
            match (next, gateway) {
                (Some((t, s)), g) => {
                    if let Some(g) = g {
                        if g < t {
                            agenda.restore(t, s);
                            self.now = g;
                            for u in self.gateway_tick() {
                                agenda.refresh(u, &self.shards);
                            }
                            continue;
                        }
                    }
                    self.now = t;
                    self.shards[s].run_until(t);
                    self.recover_if_crashed(s);
                    self.route_escalated(s);
                    let adopted = self.gateway_tick();
                    self.maybe_rebalance();
                    self.maybe_snapshots();
                    agenda.refresh(s, &self.shards);
                    for u in adopted {
                        agenda.refresh(u, &self.shards);
                    }
                }
                (None, Some(g)) => {
                    self.now = g;
                    for u in self.gateway_tick() {
                        agenda.refresh(u, &self.shards);
                    }
                }
                (None, None) => break,
            }
        }
    }

    /// The earliest pending gateway timer: a rebuild's adoption instant or
    /// a parked escalation's delivery instant. `None` without failover.
    fn next_gateway_time(&self) -> Option<SimTime> {
        let fo = self.failover.as_ref()?;
        let rebuild = fo
            .rebuilds
            .iter()
            .filter_map(|r| r.as_ref().map(|r| r.ready_at))
            .min();
        let parked = fo.waiting.iter().map(|p| p.next_at).min();
        match (rebuild, parked) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Services every gateway timer due at the current instant: rebuild
    /// adoptions first (an adopted shard can then receive deliveries at the
    /// same instant), then parked escalations in `(next_at, seq)` order.
    /// No-op without failover. Returns the shard slots whose engine was
    /// replaced by an adoption (their event timing changed — the caller's
    /// agenda must refresh them); allocation-free when nothing is adopted.
    fn gateway_tick(&mut self) -> Vec<usize> {
        let mut adopted = Vec::new();
        if self.failover.is_none() {
            return adopted;
        }
        loop {
            let due = {
                let fo = self.failover.as_ref().expect("checked above");
                (0..self.shards.len()).find(|&s| {
                    fo.rebuilds[s]
                        .as_ref()
                        .is_some_and(|r| r.ready_at <= self.now)
                })
            };
            let Some(s) = due else { break };
            self.adopt_rebuild(s);
            adopted.push(s);
        }
        loop {
            let idx = {
                let fo = self.failover.as_ref().expect("checked above");
                fo.waiting
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.next_at <= self.now)
                    .min_by_key(|(_, p)| (p.next_at, p.seq))
                    .map(|(i, _)| i)
            };
            let Some(i) = idx else { break };
            let parked = self
                .failover
                .as_mut()
                .expect("checked above")
                .waiting
                .remove(i);
            self.deliver_parked(parked);
        }
        adopted
    }

    /// Rebuilds shard `s` from its snapshot + WAL suffix after a process
    /// crash. Without durability this is a no-op: the shard stays dead.
    ///
    /// Recovery is invisible to the simulation — the rebuilt engine resumes
    /// at the exact virtual-clock point the log ends (the replay runs the
    /// crash-truncated slice to its deadline), and all bookkeeping goes to
    /// the WAL's own metrics registry, never the deterministic trace.
    fn recover_if_crashed(&mut self, s: usize) {
        if !self.shards[s].is_crashed() || self.durability.is_none() {
            return;
        }
        if self.failover.is_some() && self.try_failover_rebuild(s) {
            return;
        }
        let ShardManager {
            durability,
            failover,
            shards,
            ..
        } = self;
        let dur = durability.as_mut().expect("checked above");
        let started = std::time::Instant::now();
        let manager = &mut dur.managers[s];
        let records = manager.records().expect("wal read at recovery");
        let base = manager
            .latest_snapshot()
            .map(|(at, image)| (at, image.fork_snapshot()));
        let (base_image, suffix) = match base {
            Some((at, image)) => {
                let skip = (at - manager.handle().base()) as usize;
                (Some(image), records[skip..].to_vec())
            }
            None => (None, records),
        };
        let replayed = suffix.len();
        let recovered = recover_engine(base_image, &dur.specs[s], suffix, dur.fingerprints[s])
            .unwrap_or_else(|e| panic!("shard {s}: unrecoverable wal: {e}"));
        // The replay ran the crash-truncated tail past the log's end;
        // write that re-derived history back so the log stays complete.
        manager.append_all(recovered.appended);
        let mut engine = recovered.engine;
        engine.attach_wal(manager.handle());
        // In-place recovery is the same incarnation: restore its identity
        // (the replayed engine was rebuilt with the default stamp).
        let (host, epoch) = failover
            .as_ref()
            .map_or((s as u32, 1), |fo| (fo.hosts[s], fo.fences[s].current()));
        engine.set_identity(host, epoch);
        shards[s] = *engine;
        dur.recoveries += 1;
        dur.records_replayed += replayed as u64;
        let wall_ms = started.elapsed().as_millis() as u64;
        dur.recovery_wall_ms.push(wall_ms);
        let label = s.to_string();
        dur.obs
            .incr("aorta_wal_recoveries", &[("shard", label.as_str())], 1);
        dur.obs.span(
            SpanKind::Recovery,
            shards[s].now(),
            SimDuration::ZERO,
            &format!("s{s} replayed {replayed} records"),
        );
        debug_assert!(!shards[s].is_crashed(), "recovery left shard {s} halted");
    }

    /// Cross-host failover, phase 1: cut a [`SnapshotImage`] from the dead
    /// shard's sealed log, ship it over the simulated network to a fresh
    /// host, and rebuild the engine there by replay. The rebuilt engine is
    /// parked until the degraded window (`rebuild_delay` + transfer time)
    /// elapses; [`Self::adopt_rebuild`] then swaps it in under a bumped
    /// epoch. Returns `false` when the log cannot be cut into a shippable
    /// image (compacted, or it crossed a device adoption, whose `MigrateIn`
    /// is unreplayable from genesis) — the caller then recovers in place.
    ///
    /// A transfer the retransmission budget cannot repair, or a shipped
    /// image that fails its integrity gate, panics: a shard must never be
    /// rebuilt from a torn or corrupt image, and silently staying dead is
    /// exactly the silent failure this subsystem exists to prevent.
    fn try_failover_rebuild(&mut self, s: usize) -> bool {
        let now = self.now;
        let ShardManager {
            durability,
            failover,
            trace,
            obs,
            ..
        } = self;
        let (Some(dur), Some(fo)) = (durability.as_mut(), failover.as_mut()) else {
            return false;
        };
        let manager = &mut dur.managers[s];
        // Group-commit point: only durable frames may enter the image.
        manager.handle().seal_tail();
        let records = manager.records().expect("wal read at failover");
        let shippable = manager.handle().base() == 0
            && !records
                .iter()
                .any(|r| matches!(r, WalRecord::MigrateIn { .. }));
        if !shippable {
            trace.emit(
                now,
                "gateway",
                format!(
                    "shard {s}: log not shippable as an image \
                     (compacted or crossed a device adoption), recovering in place"
                ),
            );
            return false;
        }
        let barrier = manager
            .latest_snapshot()
            .map_or(0, |(at, _)| at as usize)
            .min(records.len());
        let image = SnapshotImage {
            shard: s as u32,
            epoch: fo.fences[s].current(),
            fingerprint: dur.fingerprints[s],
            prefix: records[..barrier].to_vec(),
            suffix: records[barrier..].to_vec(),
        };
        let bytes = image.encode();
        let shipment = ship_bytes(&bytes, &fo.config.ship, &mut fo.rng)
            .unwrap_or_else(|e| panic!("shard {s}: snapshot image transfer failed: {e}"));
        // Decode what actually arrived — the receiver's integrity gate. A
        // torn or corrupt image is refused loudly, never replayed.
        let verified = SnapshotImage::decode(&shipment.bytes)
            .unwrap_or_else(|e| panic!("shard {s}: shipped snapshot image refused: {e}"));
        assert_eq!(verified.shard, s as u32, "image shard identity mismatch");
        assert_eq!(
            verified.fingerprint, dur.fingerprints[s],
            "image genesis fingerprint mismatch"
        );
        let replayed = verified.records().len() as u64;
        let recovered = restore_from_image(&dur.specs[s], &verified, dur.fingerprints[s])
            .unwrap_or_else(|e| panic!("shard {s}: image replay failed: {e}"));
        // The replay ran the crash-truncated tail to its deadline; write
        // that re-derived history back so the log stays complete.
        manager.append_all(recovered.appended);
        let mut engine = recovered.engine;
        engine.attach_wal(manager.handle());
        let new_host = fo.next_host;
        fo.next_host += 1;
        let ready_at = now + fo.config.rebuild_delay + shipment.elapsed;
        fo.rebuilds[s] = Some(PendingRebuild {
            engine,
            ready_at,
            detected_at: now,
            old_host: fo.hosts[s],
            new_host,
            bytes_shipped: bytes.len() as u64,
            ship_rounds: shipment.rounds,
            replayed,
        });
        if let Some(m) = obs {
            m.incr("aorta_failover_started", &[], 1);
        }
        trace.emit(
            now,
            "gateway",
            format!(
                "shard {s}: process crash detected, {} B image shipped to host {new_host} \
                 in {} round(s), rebuild in flight",
                bytes.len(),
                shipment.rounds
            ),
        );
        true
    }

    /// Cross-host failover, phase 2: the degraded window elapsed — swap the
    /// rebuilt engine in under a bumped epoch on its fresh host, then let
    /// the gateway drain whatever the replay re-derived into its escalation
    /// buffer (the dead incarnation's in-flight work, reconciled exactly
    /// once: the corpse was never drained).
    fn adopt_rebuild(&mut self, s: usize) {
        let (rebuild, epoch) = {
            let fo = self.failover.as_mut().expect("gated by caller");
            let rebuild = fo.rebuilds[s].take().expect("gated by caller");
            let epoch = fo.fences[s].bump();
            fo.hosts[s] = rebuild.new_host;
            (rebuild, epoch)
        };
        let mut engine = rebuild.engine;
        engine.set_identity(rebuild.new_host, epoch);
        self.shards[s] = *engine;
        self.trace.emit(
            self.now,
            "gateway",
            format!(
                "shard {s}: failover complete, host {} -> {} under epoch {epoch} \
                 ({} records replayed, {} B shipped)",
                rebuild.old_host, rebuild.new_host, rebuild.replayed, rebuild.bytes_shipped
            ),
        );
        if let Some(m) = &self.obs {
            m.incr("aorta_failover_completed", &[], 1);
            m.span(
                SpanKind::Failover,
                rebuild.detected_at,
                rebuild.ready_at - rebuild.detected_at,
                &format!(
                    "s{s} host {}->{} epoch={epoch} shipped={}B rounds={}",
                    rebuild.old_host, rebuild.new_host, rebuild.bytes_shipped, rebuild.ship_rounds
                ),
            );
        }
        let fo = self.failover.as_mut().expect("gated by caller");
        fo.events.push(FailoverEvent {
            shard: s,
            old_host: rebuild.old_host,
            new_host: rebuild.new_host,
            epoch,
            detected_at: rebuild.detected_at,
            ready_at: rebuild.ready_at,
            bytes_shipped: rebuild.bytes_shipped,
            ship_rounds: rebuild.ship_rounds,
            records_replayed: rebuild.replayed,
        });
        // Reconcile at the epoch bump: the replay re-derived every
        // escalation the dead incarnation held; drain them through the
        // normal (parked, backed-off) path under the new epoch.
        self.route_escalated(s);
    }

    /// Parks an escalation at the gateway for backed-off delivery — the
    /// probe layer's seeded-jitter exponential backoff, not an immediate
    /// re-injection.
    fn park(&mut self, from: usize, request: ActionRequest, attempt: u32) {
        let now = self.now;
        let query_id = request.query_id;
        let fo = self.failover.as_mut().expect("gated by caller");
        let retry = fo.config.retry;
        let jitter = SimDuration::from_micros(fo.rng.range(0..=retry.jitter().as_micros()));
        // Always strictly in the future, so a zero-backoff policy cannot
        // spin the gateway at one instant.
        let next_at =
            (now + retry.backoff_after(attempt) + jitter).max(now + SimDuration::from_micros(1));
        let seq = fo.next_seq;
        fo.next_seq += 1;
        fo.waiting.push(Parked {
            request,
            from,
            epoch: fo.fences[from].current(),
            attempt,
            next_at,
            seq,
        });
        if let Some(m) = &self.obs {
            m.incr("aorta_gateway_parked", &[], 1);
        }
        self.trace.emit(
            now,
            "gateway",
            format!("query {query_id}: escalation from s{from} parked (attempt {attempt})"),
        );
    }

    /// Delivers (or re-parks, or terminally resolves) one parked
    /// escalation whose backoff elapsed.
    fn deliver_parked(&mut self, parked: Parked) {
        let Parked {
            mut request,
            from,
            attempt,
            ..
        } = parked;
        if request.deadline != SimTime::MAX && self.now >= request.deadline {
            self.gateway_expired += 1;
            if let Some(m) = &self.obs {
                m.incr("aorta_gateway_expired", &[], 1);
            }
            self.trace.emit(
                self.now,
                "gateway",
                format!(
                    "query {}: deadline passed while parked, escalation dropped",
                    request.query_id
                ),
            );
            return;
        }
        if request.hops as usize + 1 >= self.shards.len() {
            self.drop_request(&request, "visited every shard");
            return;
        }
        // Select among siblings that are alive, reachable (no active
        // partition window on the from→to path), and whose cheapest
        // estimate fits the remaining deadline budget.
        let eligible: Vec<bool> = (0..self.shards.len())
            .map(|t| {
                t != from
                    && !self.shards[t].is_crashed()
                    && !self.is_rebuilding(t)
                    && !self.blocked(from, t)
            })
            .collect();
        let now = self.now;
        let mut best: Option<(SimDuration, usize, DeviceId)> = None;
        for (t, shard) in self.shards.iter_mut().enumerate() {
            if !eligible[t] {
                continue;
            }
            if let Some((device, cost)) = shard.cheapest_local_candidate(&request) {
                if now + cost > request.deadline {
                    continue;
                }
                if best.is_none_or(|(bc, bt, _)| (cost, t) < (bc, bt)) {
                    best = Some((cost, t, device));
                }
            }
        }
        match best {
            Some((cost, t, device)) => {
                request.hops += 1;
                self.rerouted += 1;
                if let Some(m) = &self.obs {
                    m.incr("aorta_gateway_rerouted", &[], 1);
                    m.span(
                        SpanKind::GatewayRoute,
                        self.now,
                        SimDuration::ZERO,
                        &format!(
                            "query={} s{from}->s{t} device={device} estimate={cost} \
                             attempt={attempt}",
                            request.query_id
                        ),
                    );
                }
                self.trace.emit(
                    self.now,
                    "gateway",
                    format!(
                        "query {}: delivered s{from} -> s{t} on attempt {attempt} \
                         (cheapest {device}, estimate {cost})",
                        request.query_id
                    ),
                );
                self.shards[t].inject_request(request);
            }
            None => {
                let budget = self
                    .failover
                    .as_ref()
                    .expect("gated by caller")
                    .config
                    .retry
                    .max_attempts();
                if attempt < budget {
                    self.park(from, request, attempt + 1);
                } else {
                    self.drop_request(&request, "no eligible sibling within the retry budget");
                }
            }
        }
    }

    /// True while shard slot `s` awaits adoption of a cross-host rebuild.
    fn is_rebuilding(&self, s: usize) -> bool {
        self.failover
            .as_ref()
            .is_some_and(|fo| fo.rebuilds[s].is_some())
    }

    /// Takes cadence snapshots of any shard whose log has grown past the
    /// configured frame budget since its last snapshot.
    fn maybe_snapshots(&mut self) {
        let ShardManager {
            durability,
            failover,
            shards,
            ..
        } = self;
        let Some(dur) = durability else { return };
        for (s, manager) in dur.managers.iter_mut().enumerate() {
            // Never snapshot a corpse awaiting a cross-host rebuild: the
            // halted engine's image would poison later recoveries.
            if failover.as_ref().is_some_and(|fo| fo.rebuilds[s].is_some()) {
                continue;
            }
            manager.maybe_snapshot(|| shards[s].fork_snapshot());
        }
    }

    /// Advances the shared virtual clock by `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.run_until(self.now + duration);
    }

    /// Drains shard `s`'s escalation buffer and re-routes each request to
    /// the sibling offering the cheapest eligible device (ties break on the
    /// lower shard ID). A request that has already visited every shard, or
    /// for which no sibling has an eligible device, is terminally dropped —
    /// and counted, never lost.
    fn route_escalated(&mut self, s: usize) {
        // A corpse awaiting cross-host rebuild is never drained: its
        // buffered escalations are re-derived by the replay, so draining
        // both would double-count the same work. The backlog stays visible
        // as in-flight (`gateway_parked`) until adoption.
        if self.failover.is_some() && self.shards[s].is_crashed() {
            return;
        }
        let escalated = self.shards[s].drain_escalated();
        if !escalated.is_empty() {
            if let Some(m) = &self.obs {
                let shard = s.to_string();
                m.incr(
                    "aorta_gateway_escalations",
                    &[("from", shard.as_str())],
                    escalated.len() as u64,
                );
            }
        }
        for mut request in escalated {
            // The deadline rides with the request: an escalation carries its
            // *remaining* budget, never a fresh one — so a request cannot
            // ping-pong between shards past the instant its result became
            // worthless. Expired escalations are counted, not retried.
            if request.deadline != SimTime::MAX && self.now >= request.deadline {
                self.gateway_expired += 1;
                if let Some(m) = &self.obs {
                    m.incr("aorta_gateway_expired", &[], 1);
                }
                self.trace.emit(
                    self.now,
                    "gateway",
                    format!(
                        "query {}: deadline passed in flight, escalation dropped",
                        request.query_id
                    ),
                );
                continue;
            }
            if request.hops as usize + 1 >= self.shards.len() {
                self.drop_request(&request, "visited every shard");
                continue;
            }
            // With failover on, the gateway never re-injects immediately:
            // every escalation parks for a backed-off, jittered delivery
            // (and degraded-mode routing happens at delivery time, when
            // shard liveness and partition windows are re-checked).
            if self.failover.is_some() {
                self.park(s, request, 1);
                continue;
            }
            // Partition windows apply even without failover (they only
            // exist when a plan injected them): a blocked path is not
            // probed at all — no message can travel it.
            let reachable: Vec<bool> = (0..self.shards.len())
                .map(|t| self.partitions.is_empty() || !self.blocked(s, t))
                .collect();
            let mut best: Option<(SimDuration, usize, DeviceId)> = None;
            for (t, shard) in self.shards.iter_mut().enumerate() {
                if t == s || !reachable[t] {
                    continue;
                }
                if let Some((device, cost)) = shard.cheapest_local_candidate(&request) {
                    // A sibling whose cheapest estimate already overruns the
                    // remaining budget is no better than no sibling at all.
                    if self.now + cost > request.deadline {
                        continue;
                    }
                    if best.is_none_or(|(bc, bt, _)| (cost, t) < (bc, bt)) {
                        best = Some((cost, t, device));
                    }
                }
            }
            match best {
                Some((cost, t, device)) => {
                    request.hops += 1;
                    self.rerouted += 1;
                    if let Some(m) = &self.obs {
                        m.incr("aorta_gateway_rerouted", &[], 1);
                        m.span(
                            SpanKind::GatewayRoute,
                            self.now,
                            SimDuration::ZERO,
                            &format!(
                                "query={} s{s}->s{t} device={device} estimate={cost}",
                                request.query_id
                            ),
                        );
                    }
                    self.trace.emit(
                        self.now,
                        "gateway",
                        format!(
                            "query {}: rerouted s{s} -> s{t} (cheapest {device}, estimate {cost})",
                            request.query_id
                        ),
                    );
                    self.shards[t].inject_request(request);
                }
                None => self.drop_request(&request, "no eligible device on any sibling"),
            }
        }
    }

    fn drop_request(&mut self, request: &ActionRequest, why: &str) {
        self.gateway_dropped += 1;
        if let Some(m) = &self.obs {
            m.incr("aorta_gateway_dropped", &[], 1);
        }
        self.trace.emit(
            self.now,
            "gateway",
            format!("query {}: {why}, request dropped", request.query_id),
        );
    }

    /// Migrates camera ownership from the most backlogged shard to the
    /// least when the pending-request gap exceeds the configured
    /// threshold. Only devices at a safe point move: online, no queued
    /// execution, no lock held, no action mid-flight — so no in-flight
    /// state is torn. The source always keeps at least one camera.
    fn maybe_rebalance(&mut self) {
        if self.shards.len() < 2 || self.config.imbalance_threshold == u64::MAX {
            return;
        }
        // Never migrate devices while a shard is dead or mid-rebuild: the
        // corpse's registry is frozen and the replacement's is in flight.
        if self.failover.is_some() && self.shards.iter().any(Aorta::is_crashed) {
            return;
        }
        let depths: Vec<u64> = self.shards.iter().map(|s| s.pending_requests()).collect();
        let (max_s, &max_d) = depths
            .iter()
            .enumerate()
            .max_by_key(|&(s, &d)| (d, std::cmp::Reverse(s)))
            .expect("at least two shards");
        let (min_s, &min_d) = depths
            .iter()
            .enumerate()
            .min_by_key(|&(s, &d)| (d, s))
            .expect("at least two shards");
        if max_s == min_s || max_d - min_d < self.config.imbalance_threshold {
            return;
        }
        let movable: Vec<DeviceId> = {
            let source = &self.shards[max_s];
            let cameras = source.registry().ids_of_kind(DeviceKind::Camera);
            let spare = cameras.len().saturating_sub(1);
            cameras
                .into_iter()
                .filter(|&d| {
                    source.registry().get(d).is_some_and(|e| e.online) && source.device_idle(d)
                })
                .take(spare.min(self.config.migration_batch))
                .collect()
        };
        for d in movable {
            let Some(entry) = self.shards[max_s].migrate_out(d) else {
                continue;
            };
            self.shards[min_s].migrate_in(entry);
            self.migrations += 1;
            // Snapshot barrier: the destination's MigrateIn record carries
            // no device state (the adopted entry is a live image), so both
            // shards vault an image *now* — no replay suffix ever has to
            // cross the migration.
            {
                let ShardManager {
                    durability, shards, ..
                } = self;
                if let Some(dur) = durability {
                    dur.managers[max_s].force_snapshot(|| shards[max_s].fork_snapshot());
                    dur.managers[min_s].force_snapshot(|| shards[min_s].fork_snapshot());
                }
            }
            if let Some(m) = &self.obs {
                m.incr("aorta_gateway_migrations", &[], 1);
            }
            self.trace.emit(
                self.now,
                "gateway",
                format!("migrated {d}: s{max_s} (backlog {max_d}) -> s{min_s} (backlog {min_d})"),
            );
        }
    }

    /// Aggregated cluster statistics. After [`ShardManager::run_until`]
    /// returns, [`ClusterStats::check_conservation`] holds: every admitted
    /// request is terminally resolved on some shard, visibly pending, or
    /// counted dropped by the gateway.
    pub fn stats(&self) -> ClusterStats {
        let (gateway_parked, failovers, zombie_rejects) = match &self.failover {
            Some(fo) => (
                // Parked escalations, plus the undrained backlog of any
                // corpse awaiting rebuild (in-flight work the replay will
                // re-derive) — both are "at the gateway", not lost.
                fo.waiting.len() as u64
                    + (0..self.shards.len())
                        .filter(|&s| fo.rebuilds[s].is_some())
                        .map(|s| self.shards[s].escalated_backlog())
                        .sum::<u64>(),
                fo.events.len() as u64,
                fo.fences.iter().map(EpochFence::rejected).sum(),
            ),
            None => (0, 0, 0),
        };
        ClusterStats {
            per_shard: self.shards.iter().map(Aorta::stats).collect(),
            pending: self.pending_requests(),
            rerouted: self.rerouted,
            gateway_dropped: self.gateway_dropped,
            gateway_expired: self.gateway_expired,
            gateway_parked,
            migrations: self.migrations,
            failovers,
            zombie_rejects,
        }
    }

    /// Pending requests summed over shards.
    pub fn pending_requests(&self) -> u64 {
        self.shards.iter().map(Aorta::pending_requests).sum()
    }

    /// The shared virtual clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A shard's engine (introspection).
    pub fn shard(&self, s: usize) -> &Aorta {
        &self.shards[s]
    }

    /// Mutable access to a shard's engine (e.g. dynamic membership via
    /// [`Aorta::registry_mut`]).
    pub fn shard_mut(&mut self, s: usize) -> &mut Aorta {
        &mut self.shards[s]
    }

    /// The gateway's own trace (reroutes, drops, migrations).
    pub fn gateway_trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The durability report: per-shard log counters, snapshots, and
    /// recovery bookkeeping. `None` unless the cluster was configured with
    /// a WAL.
    pub fn wal_report(&self) -> Option<WalReport> {
        let dur = self.durability.as_ref()?;
        Some(WalReport {
            per_shard: dur.managers.iter().map(|m| m.stats()).collect(),
            snapshots: dur.managers.iter().map(|m| m.snapshots_taken()).collect(),
            recoveries: dur.recoveries,
            records_replayed: dur.records_replayed,
            recovery_wall_ms: dur.recovery_wall_ms.clone(),
        })
    }

    /// Crash recoveries performed so far (0 without a WAL).
    pub fn recoveries(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.recoveries)
    }

    /// Every completed cross-host failover, in adoption order. Empty
    /// without failover configured.
    pub fn failover_report(&self) -> Vec<FailoverEvent> {
        self.failover
            .as_ref()
            .map_or_else(Vec::new, |fo| fo.events.clone())
    }

    /// Stale-epoch deliveries the gateway's fences refused (counted, never
    /// applied). Zero without failover configured.
    pub fn zombie_rejects(&self) -> u64 {
        self.failover
            .as_ref()
            .map_or(0, |fo| fo.fences.iter().map(EpochFence::rejected).sum())
    }

    /// The incarnation epoch the gateway believes current for shard slot
    /// `s` (1 until the first failover; without failover, always 1).
    pub fn shard_epoch(&self, s: usize) -> u64 {
        self.failover
            .as_ref()
            .map_or(1, |fo| fo.fences[s].current())
    }

    /// The host currently running shard slot `s` (host `s` until the first
    /// failover; every failover adopts on a fresh host id).
    pub fn shard_host(&self, s: usize) -> u32 {
        self.failover.as_ref().map_or(s as u32, |fo| fo.hosts[s])
    }

    /// Escalations currently parked in the gateway's backoff queue.
    pub fn parked_requests(&self) -> u64 {
        self.failover
            .as_ref()
            .map_or(0, |fo| fo.waiting.len() as u64)
    }

    /// Delivers an escalation message claiming to come from incarnation
    /// `epoch` of shard slot `from` — the zombie path made explicit. A
    /// message stamped with a fenced-off (stale) epoch is refused and
    /// counted in [`Self::zombie_rejects`], never applied: this is how a
    /// partition-isolated old incarnation's late messages die. A message
    /// stamped with the current epoch is admitted into the normal parked
    /// delivery path and `true` is returned — the caller then vouches that
    /// some shard's `escalated_out` covers the request, or the conservation
    /// ledger will (correctly) flag the orphan.
    ///
    /// # Panics
    ///
    /// Panics when failover is not configured, or when `epoch` is *ahead*
    /// of the fence (a message from the future is a logic bug, not a
    /// zombie).
    pub fn inject_escalation(&mut self, from: usize, epoch: u64, request: ActionRequest) -> bool {
        assert!(
            self.failover.is_some(),
            "inject_escalation requires failover (epoch fences) to be configured"
        );
        let admitted = self.failover.as_mut().expect("checked above").fences[from].admit(epoch);
        if !admitted {
            let current = self.shard_epoch(from);
            if let Some(m) = &self.obs {
                m.incr("aorta_zombie_rejects", &[], 1);
            }
            self.trace.emit(
                self.now,
                "gateway",
                format!(
                    "query {}: stale-epoch escalation from s{from} \
                     (epoch {epoch}, fence at {current}) rejected",
                    request.query_id
                ),
            );
            return false;
        }
        self.park(from, request, 1);
        true
    }

    /// The WAL's own metrics registry (append/recovery series), kept apart
    /// from the deterministic cluster snapshot. `None` without a WAL.
    pub fn wal_metrics_snapshot(&self) -> Option<MetricsRegistry> {
        self.durability.as_ref().map(|d| d.obs.snapshot())
    }

    /// Requests the gateway re-routed to a sibling shard.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Device ownership transfers performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// A cluster-wide metrics snapshot: the gateway's own series plus every
    /// shard's registry folded in under a `shard` label. `None` unless the
    /// engine template enabled observability.
    pub fn metrics_snapshot(&self) -> Option<MetricsRegistry> {
        let obs = self.obs.as_ref()?;
        let mut snap = obs.snapshot();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(shard_snap) = shard.metrics() {
                let label = s.to_string();
                snap.merge_labeled(&shard_snap, "shard", &label);
            }
        }
        Some(snap)
    }

    /// The cluster metrics snapshot rendered as JSON.
    pub fn metrics_json(&self) -> Option<String> {
        self.metrics_snapshot().map(|s| s.to_json())
    }

    /// The cluster metrics snapshot rendered as Prometheus text.
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.metrics_snapshot().map(|s| s.to_prometheus())
    }

    /// The full cluster trace: every shard's engine trace prefixed with
    /// its shard ID, then the gateway trace — the byte-identical artifact
    /// cluster determinism is asserted on.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for line in shard.trace().render().lines() {
                out.push_str(&format!("[s{s}] {line}\n"));
            }
        }
        for line in self.trace.render().lines() {
            out.push_str(&format!("[gw] {line}\n"));
        }
        out
    }
}

/// An end-to-end observability demo on a fixed scenario: a two-shard
/// cluster with observability on, a mid-run camera crash to exercise probe
/// timeouts, breaker-free failover and gateway routing, and one scheduler
/// benchmark run folded in for the per-algorithm series. Returns the
/// `(JSON, Prometheus)` exports.
///
/// Everything inside runs on the virtual clock with seeded randomness and
/// integer-only exports, so the same `seed` yields byte-identical strings
/// on any platform — the invariant `tests/determinism.rs` asserts.
pub fn metrics_demo(seed: u64) -> (String, String) {
    use aorta_sched::{run_algorithm, workload, Algorithm};
    use aorta_sim::{CpuModel, FaultEvent, SimRng};

    let mut config = ClusterConfig::seeded(seed, 2);
    config.engine = config.engine.with_observability();
    let lab = PervasiveLab::with_sizes(6, 8, 0)
        .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO);
    let mut cluster = ShardManager::new(config, lab);
    for i in 0..4 {
        cluster
            .execute_sql(&format!(
                r#"CREATE AQ q{i} AS
                   SELECT photo(c.ip, s.loc, "p")
                   FROM sensor s, camera c
                   WHERE s.accel_x > 500 AND s.id = {i} AND coverage(c.id, s.loc)"#
            ))
            .expect("demo query registers");
    }
    let mut plan = FaultPlan::new();
    plan.schedule(
        SimTime::ZERO + SimDuration::from_secs(90),
        FaultEvent::Crash(DeviceId::camera(0)),
    );
    cluster.inject_faults(plan);
    cluster.run_for(SimDuration::from_mins(5));

    let mut snap = cluster
        .metrics_snapshot()
        .expect("observability is enabled above");
    let cpu = CpuModel::paper_notebook();
    let (inst, model) = workload::uniform_targets(20, 10, &mut SimRng::seed(seed));
    let mut rng = SimRng::seed(seed ^ 0xA0A0_A0A0);
    run_algorithm(&Algorithm::LerfaSrfe, &inst, &model, &cpu, &mut rng).record_into(&mut snap);
    (snap.to_json(), snap.to_prometheus())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aorta_sim::FaultEvent;

    const RUN: SimDuration = SimDuration::from_mins(10);

    fn lab() -> PervasiveLab {
        PervasiveLab::with_sizes(12, 16, 0)
            .with_periodic_events(SimDuration::from_mins(1), SimDuration::ZERO)
    }

    fn admit_queries(cluster: &mut ShardManager, coverage: bool) {
        for i in 0..10 {
            let pred = if coverage {
                " AND coverage(c.id, s.loc)"
            } else {
                ""
            };
            cluster
                .execute_sql(&format!(
                    r#"CREATE AQ q{i} AS
                       SELECT photo(c.ip, s.loc, "p")
                       FROM sensor s, camera c
                       WHERE s.accel_x > 500 AND s.id = {i}{pred}"#
                ))
                .unwrap();
        }
    }

    #[test]
    fn ddl_broadcasts_to_every_shard() {
        let mut cluster = ShardManager::new(ClusterConfig::seeded(3, 4), lab());
        admit_queries(&mut cluster, true);
        for s in 0..cluster.shard_count() {
            assert_eq!(
                cluster.shard(s).catalog().query_count(),
                10,
                "shard {s} missed the broadcast"
            );
        }
    }

    #[test]
    fn every_device_lands_on_exactly_one_shard() {
        for policy in [PartitionPolicy::RegionStripes, PartitionPolicy::Rendezvous] {
            let cluster =
                ShardManager::new(ClusterConfig::seeded(9, 4).with_partition(policy), lab());
            let mut total = 0;
            for s in 0..cluster.shard_count() {
                let r = cluster.shard(s).registry();
                total += r.ids_of_kind(DeviceKind::Camera).len()
                    + r.ids_of_kind(DeviceKind::Sensor).len();
            }
            assert_eq!(total, 12 + 16, "{policy:?} lost or duplicated devices");
            for c in 0..12u32 {
                assert!(cluster.shard_owning(DeviceId::camera(c)).is_some());
            }
        }
    }

    #[test]
    fn dead_stripe_fails_over_to_sibling_shard() {
        // Two stripe shards; kill shard 0's entire camera block before any
        // event fires. Shard 0 still detects events on its motes, exhausts
        // its (all-dead) candidates, and the gateway must re-route to s1.
        let mut cluster = ShardManager::new(
            ClusterConfig::seeded(11, 2).with_imbalance_threshold(u64::MAX),
            lab(),
        );
        admit_queries(&mut cluster, false);
        let mut plan = FaultPlan::new();
        for c in 0..12u32 {
            let id = DeviceId::camera(c);
            if cluster.shard_owning(id) == Some(0) {
                plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
            }
        }
        assert!(!plan.is_empty(), "stripe 0 owned no cameras");
        cluster.inject_faults(plan);
        cluster.run_for(RUN);

        let stats = cluster.stats();
        stats.check_conservation().unwrap();
        assert!(
            cluster.rerouted() > 0,
            "no cross-shard failover happened: {stats:?}"
        );
        assert!(cluster.gateway_trace().any("gateway", "rerouted s0 -> s1"));
        assert!(
            stats.per_shard[1].escalated_in > 0,
            "sibling adopted nothing: {stats:?}"
        );
    }

    #[test]
    fn conservation_holds_under_cluster_wide_crash_storm() {
        let mut cluster = ShardManager::new(ClusterConfig::seeded(21, 4), lab());
        admit_queries(&mut cluster, true);
        let devices: Vec<DeviceId> = (0..12)
            .map(DeviceId::camera)
            .chain((0..16).map(DeviceId::sensor))
            .collect();
        let config = aorta_sim::FaultConfig {
            crash_rate: 0.25,
            loss_burst_rate: 0.3,
            extra_loss: 0.5,
            ..aorta_sim::FaultConfig::default()
        };
        let plan = FaultPlan::generate(0xBEEF, RUN, &devices, &config);
        assert!(!plan.is_empty());
        cluster.inject_faults(plan);
        cluster.run_for(RUN);

        let stats = cluster.stats();
        assert!(stats.requests() >= 10, "storm starved workload: {stats:?}");
        stats.check_conservation().unwrap();
    }

    /// An eligible (rebalance-off, WAL-off) config for the parallel path.
    fn parallel_config(seed: u64, shards: usize, threads: usize) -> ClusterConfig {
        ClusterConfig::seeded(seed, shards)
            .with_imbalance_threshold(u64::MAX)
            .with_threads(threads)
    }

    #[test]
    fn threads_default_to_auto_and_resolve_to_host_cores() {
        // The pool is on by default: `threads: 0` means one worker per
        // host core, no feature flag, no opt-in.
        let config = ClusterConfig::default();
        assert_eq!(config.threads, 0, "default must be auto");
        let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(config.effective_threads(), host);
        assert_eq!(config.with_threads(3).effective_threads(), 3);
    }

    #[test]
    fn parallel_windows_match_oracle_on_clean_wave() {
        // No faults → no escalations → the whole run is one clean window
        // committed straight from the clones.
        for shards in [2, 4] {
            let run = |threads: usize| {
                let mut cluster = ShardManager::new(parallel_config(29, shards, threads), lab());
                admit_queries(&mut cluster, true);
                cluster.run_for(RUN);
                (cluster.stats(), cluster.render_trace())
            };
            let oracle = run(1);
            for threads in [2, 4, 8] {
                assert_eq!(
                    run(threads),
                    oracle,
                    "threads={threads} shards={shards} diverged from the oracle"
                );
            }
        }
    }

    #[test]
    fn parallel_windows_match_oracle_under_escalation_fallback() {
        // The dead-stripe scenario: shard 0's cameras all die, every one of
        // its detections escalates — each window trips and replays through
        // the sequential oracle, and with more trips than the hysteresis
        // budget the run also exercises the finish-sequentially path.
        let run = |threads: usize| {
            let mut cluster = ShardManager::new(parallel_config(11, 2, threads), lab());
            admit_queries(&mut cluster, false);
            let mut plan = FaultPlan::new();
            for c in 0..12u32 {
                let id = DeviceId::camera(c);
                if cluster.shard_owning(id) == Some(0) {
                    plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
                }
            }
            cluster.inject_faults(plan);
            cluster.run_for(RUN);
            (cluster.stats(), cluster.render_trace())
        };
        let (oracle_stats, oracle_trace) = run(1);
        assert!(oracle_stats.rerouted > 0, "scenario must actually escalate");
        oracle_stats.check_conservation().unwrap();
        for threads in [2, 4, 8] {
            let (stats, trace) = run(threads);
            assert_eq!(stats, oracle_stats, "threads={threads} stats diverged");
            assert_eq!(trace, oracle_trace, "threads={threads} trace diverged");
        }
    }

    #[test]
    fn parallel_windows_match_oracle_under_crash_storm() {
        // Random device crashes + loss bursts: escalations land at
        // arbitrary instants, so windows trip at arbitrary points.
        let devices: Vec<DeviceId> = (0..12)
            .map(DeviceId::camera)
            .chain((0..16).map(DeviceId::sensor))
            .collect();
        let config = aorta_sim::FaultConfig {
            crash_rate: 0.25,
            loss_burst_rate: 0.3,
            extra_loss: 0.5,
            ..aorta_sim::FaultConfig::default()
        };
        for seed in [21, 0xBEEF] {
            let run = |threads: usize| {
                let mut cluster = ShardManager::new(parallel_config(seed, 4, threads), lab());
                admit_queries(&mut cluster, true);
                cluster.inject_faults(FaultPlan::generate(seed, RUN, &devices, &config));
                cluster.run_for(RUN);
                (cluster.stats(), cluster.render_trace())
            };
            let oracle = run(1);
            oracle.0.check_conservation().unwrap();
            for threads in [2, 8] {
                assert_eq!(run(threads), oracle, "seed={seed} threads={threads}");
            }
        }
    }

    #[test]
    fn process_crash_exactly_at_the_deadline_is_recovered_not_stranded() {
        // Regression guard for the run_until tail: a ProcessCrash landing
        // exactly at the deadline must still be recovered (WAL) and its
        // escalations routed before run_until returns. (The main loop
        // already treats pending faults as next-event work, so the crash
        // is stepped in-loop; the tail's recover/route follow-ups are the
        // backstop this test pins down.)
        let deadline = SimTime::ZERO + RUN;
        let mut config = ClusterConfig::seeded(33, 2).with_wal(128);
        config.imbalance_threshold = u64::MAX;
        let mut cluster = ShardManager::new(config, lab());
        admit_queries(&mut cluster, true);
        let mut plan = FaultPlan::new();
        plan.schedule(deadline, FaultEvent::ProcessCrash(DeviceId::camera(0)));
        cluster.inject_faults(plan);
        cluster.run_until(deadline);
        assert_eq!(cluster.recoveries(), 1, "deadline-edge crash not recovered");
        for s in 0..cluster.shard_count() {
            assert!(
                !cluster.shard(s).is_crashed(),
                "shard {s} left dead at the deadline"
            );
            assert_eq!(
                cluster.shard(s).escalated_backlog(),
                0,
                "shard {s} left an unrouted escalation at the deadline"
            );
        }
        cluster.stats().check_conservation().unwrap();
    }

    #[test]
    fn escalation_exactly_at_the_deadline_is_routed_not_stranded() {
        // Same edge from the escalation side: stop the run exactly on a
        // detection epoch, when the dead-stripe shard escalates at the
        // final instant. The escalation must be drained and routed (or
        // terminally counted) before run_until returns.
        let mut cluster = ShardManager::new(parallel_config(11, 2, 1), lab());
        admit_queries(&mut cluster, false);
        let mut plan = FaultPlan::new();
        for c in 0..12u32 {
            let id = DeviceId::camera(c);
            if cluster.shard_owning(id) == Some(0) {
                plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
            }
        }
        cluster.inject_faults(plan);
        // Periodic events fire every minute; stop exactly on an epoch.
        cluster.run_until(SimTime::ZERO + SimDuration::from_mins(1));
        for s in 0..cluster.shard_count() {
            assert_eq!(
                cluster.shard(s).escalated_backlog(),
                0,
                "shard {s} stranded an escalation at the deadline"
            );
        }
        assert!(
            cluster.rerouted() + cluster.stats().gateway_dropped > 0,
            "the deadline-instant escalation was neither routed nor counted"
        );
        cluster.stats().check_conservation().unwrap();
    }

    #[test]
    fn rebalancer_migrates_ownership_at_a_safe_point() {
        let mut config = ClusterConfig::seeded(5, 2);
        config.imbalance_threshold = 1;
        config.migration_batch = 1;
        let mut cluster = ShardManager::new(config, lab());
        admit_queries(&mut cluster, true);
        let before: Vec<usize> = (0..2)
            .map(|s| {
                cluster
                    .shard(s)
                    .registry()
                    .ids_of_kind(DeviceKind::Camera)
                    .len()
            })
            .collect();
        cluster.run_for(RUN);

        let stats = cluster.stats();
        stats.check_conservation().unwrap();
        assert!(stats.migrations > 0, "no migration fired: {stats:?}");
        assert!(cluster.gateway_trace().any("gateway", "migrated"));
        let after: Vec<usize> = (0..2)
            .map(|s| {
                cluster
                    .shard(s)
                    .registry()
                    .ids_of_kind(DeviceKind::Camera)
                    .len()
            })
            .collect();
        assert_eq!(
            before.iter().sum::<usize>(),
            after.iter().sum::<usize>(),
            "migration must not lose devices"
        );
        assert_ne!(before, after, "ownership should actually have moved");
        assert!(
            after.iter().all(|&c| c >= 1),
            "source gave away its last camera"
        );
    }

    #[test]
    fn metrics_snapshot_merges_shards_and_gateway() {
        let mut config = ClusterConfig::seeded(11, 2).with_imbalance_threshold(u64::MAX);
        config.engine = config.engine.with_observability();
        let mut cluster = ShardManager::new(config, lab());
        admit_queries(&mut cluster, false);
        // Kill shard 0's cameras so the gateway reroutes (as in
        // `dead_stripe_fails_over_to_sibling_shard`).
        let mut plan = FaultPlan::new();
        for c in 0..12u32 {
            let id = DeviceId::camera(c);
            if cluster.shard_owning(id) == Some(0) {
                plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
            }
        }
        cluster.inject_faults(plan);
        cluster.run_for(RUN);
        assert!(cluster.rerouted() > 0);

        let snap = cluster.metrics_snapshot().expect("observability is on");
        assert_eq!(
            snap.counter_total("aorta_gateway_rerouted"),
            cluster.rerouted(),
            "gateway counter must agree with the stats ledger"
        );
        let stats = cluster.stats();
        let per_shard_events: u64 = (0..2)
            .map(|s| {
                snap.counter(
                    "aorta_engine_events_detected",
                    &[("shard", s.to_string().as_str())],
                )
            })
            .sum();
        let total_events: u64 = stats.per_shard.iter().map(|s| s.events_detected).sum();
        assert_eq!(
            per_shard_events, total_events,
            "shard label merge lost data"
        );
        // Observability never changes behavior: the same cluster without it
        // produces identical engine statistics.
        let mut plain = ShardManager::new(
            ClusterConfig::seeded(11, 2).with_imbalance_threshold(u64::MAX),
            lab(),
        );
        admit_queries(&mut plain, false);
        let mut plan = FaultPlan::new();
        for c in 0..12u32 {
            let id = DeviceId::camera(c);
            if plain.shard_owning(id) == Some(0) {
                plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
            }
        }
        plain.inject_faults(plan);
        plain.run_for(RUN);
        assert_eq!(plain.stats(), stats, "recording must be write-only");
    }

    #[test]
    fn wal_cluster_is_byte_identical_to_unlogged() {
        let run = |wal: bool| {
            let mut config = ClusterConfig::seeded(13, 2);
            if wal {
                config = config.with_wal(64);
            }
            let mut cluster = ShardManager::new(config, lab());
            admit_queries(&mut cluster, true);
            cluster.run_for(SimDuration::from_mins(4));
            (cluster.stats(), cluster.render_trace())
        };
        let (plain_stats, plain_trace) = run(false);
        let (wal_stats, wal_trace) = run(true);
        assert_eq!(plain_stats, wal_stats, "logging must be write-only");
        assert_eq!(plain_trace, wal_trace, "logging must be write-only");
    }

    #[test]
    fn crashed_shard_recovers_byte_identical_to_uninterrupted_run() {
        let victim = DeviceId::camera(0);
        let crash_at = SimTime::ZERO + SimDuration::from_secs(150);
        let build = |wal: bool| {
            let mut config = ClusterConfig::seeded(17, 2).with_imbalance_threshold(u64::MAX);
            if wal {
                config = config.with_wal(128);
            }
            let mut cluster = ShardManager::new(config, lab());
            admit_queries(&mut cluster, true);
            cluster
        };

        // Reference: the same crash event, absorbed — the shard never halts.
        let mut reference = build(false);
        let owner = reference.shard_owning(victim).expect("victim is owned");
        reference.shard_mut(owner).grant_crash_immunity(1);
        let mut plan = FaultPlan::new();
        plan.schedule(crash_at, FaultEvent::ProcessCrash(victim));
        reference.inject_faults(plan.clone());
        reference.run_for(RUN);
        assert_eq!(reference.recoveries(), 0);

        // Live: the shard halts mid-run and is rebuilt from its WAL.
        let mut live = build(true);
        assert_eq!(live.shard_owning(victim), Some(owner));
        live.inject_faults(plan);
        live.run_for(RUN);
        assert_eq!(live.recoveries(), 1, "exactly one recovery expected");
        assert!(!live.shard(owner).is_crashed());

        let stats = live.stats();
        stats.check_conservation().unwrap();
        assert_eq!(stats, reference.stats(), "recovery must be invisible");
        assert_eq!(
            live.render_trace(),
            reference.render_trace(),
            "recovered cluster trace must be byte-identical"
        );
        let report = live.wal_report().expect("wal is on");
        assert!(report.records_replayed > 0);
        assert_eq!(report.recovery_wall_ms.len(), 1);
    }

    #[test]
    fn recovery_after_migration_replays_from_the_barrier_snapshot() {
        // Rebalancing on + WAL on: migrations force barrier snapshots, and
        // a later process crash on each shard must recover from them (a
        // replay from genesis would hit the unreplayable MigrateIn).
        let mut config = ClusterConfig::seeded(5, 2).with_wal(1_000_000);
        config.imbalance_threshold = 1;
        config.migration_batch = 1;
        let mut cluster = ShardManager::new(config, lab());
        admit_queries(&mut cluster, true);
        cluster.run_for(SimDuration::from_mins(6));
        assert!(cluster.migrations() > 0, "scenario must migrate");

        // Crash one camera-owning device per shard late in the run.
        let mut plan = FaultPlan::new();
        for s in 0..2 {
            let cam = cluster.shard(s).registry().ids_of_kind(DeviceKind::Camera)[0];
            assert_eq!(cluster.shard_owning(cam), Some(s));
            plan.schedule(
                cluster.now() + SimDuration::from_secs(30 + s as u64),
                FaultEvent::ProcessCrash(cam),
            );
        }
        cluster.inject_faults(plan);
        cluster.run_for(SimDuration::from_mins(4));

        assert_eq!(cluster.recoveries(), 2, "both shards must recover");
        cluster.stats().check_conservation().unwrap();
        let report = cluster.wal_report().expect("wal is on");
        // The snapshot cadence is effectively off (1M frames), so every
        // vaulted image is a migration barrier — and recovery used them.
        assert!(report.snapshots.iter().sum::<u64>() >= 2);
    }

    #[test]
    fn without_wal_a_crashed_shard_stays_dead_but_conservation_holds() {
        let mut cluster = ShardManager::new(
            ClusterConfig::seeded(17, 2).with_imbalance_threshold(u64::MAX),
            lab(),
        );
        admit_queries(&mut cluster, true);
        let victim = DeviceId::camera(0);
        let owner = cluster.shard_owning(victim).expect("owned");
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(150),
            FaultEvent::ProcessCrash(victim),
        );
        cluster.inject_faults(plan);
        cluster.run_for(RUN);
        assert!(cluster.shard(owner).is_crashed(), "no wal, no recovery");
        assert_eq!(cluster.recoveries(), 0);
        // The dead shard's admitted-but-unresolved work is visibly pending,
        // so the cluster ledger still closes.
        cluster.stats().check_conservation().unwrap();
    }

    fn failover_config(seed: u64) -> ClusterConfig {
        ClusterConfig::seeded(seed, 2)
            .with_imbalance_threshold(u64::MAX)
            .with_wal(128)
            .with_failover(FailoverConfig::default())
    }

    /// A minimal escalation message for fence tests (the fence inspects the
    /// stamp, not the payload).
    fn zombie_request() -> ActionRequest {
        ActionRequest {
            query_id: 999,
            action: "photo".into(),
            event_tuple: aorta_data::Tuple::empty(),
            event_binding: "s".into(),
            event_kind: DeviceKind::Sensor,
            device_binding: None,
            args: Vec::new(),
            candidates: Vec::new(),
            created_at: SimTime::ZERO,
            deadline: SimTime::MAX,
            degraded: false,
            attempts: 0,
            hops: 0,
        }
    }

    #[test]
    fn crashed_shard_is_rebuilt_on_a_fresh_host() {
        let victim = DeviceId::camera(0);
        let mut cluster = ShardManager::new(failover_config(23), lab());
        admit_queries(&mut cluster, true);
        let owner = cluster.shard_owning(victim).expect("victim is owned");
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::ZERO + SimDuration::from_secs(150),
            FaultEvent::ProcessCrash(victim),
        );
        cluster.inject_faults(plan);
        cluster.run_for(RUN);

        let events = cluster.failover_report();
        assert_eq!(events.len(), 1, "exactly one failover expected");
        let ev = &events[0];
        assert_eq!(ev.shard, owner);
        assert_eq!(ev.old_host, owner as u32);
        assert_eq!(ev.new_host, 2, "the adopting host must be fresh");
        assert_eq!(ev.epoch, 2, "adoption must bump the epoch");
        assert!(ev.bytes_shipped > 0, "an image must actually ship");
        assert!(ev.records_replayed > 0, "the image must carry history");
        assert!(
            ev.degraded_window() >= SimDuration::from_millis(100),
            "the degraded window includes the rebuild delay"
        );
        assert!(!cluster.shard(owner).is_crashed());
        assert_eq!(cluster.shard_host(owner), 2);
        assert_eq!(cluster.shard_epoch(owner), 2);
        assert_eq!(cluster.shard(owner).host(), 2);
        assert_eq!(cluster.shard(owner).epoch(), 2);
        assert_eq!(
            cluster.recoveries(),
            0,
            "cross-host rebuild must not count as in-place recovery"
        );
        let stats = cluster.stats();
        stats.check_conservation().unwrap();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.late_successes(), 0);
        assert!(cluster.gateway_trace().any("gateway", "rebuild in flight"));
        assert!(cluster.gateway_trace().any("gateway", "failover complete"));
    }

    /// Pushdown rides the engine-config template through WAL snapshots and
    /// cross-host failover, and never perturbs the cluster run: the flag-on
    /// arm is byte-identical to the baseline, while every shard — including
    /// the one rebuilt on a fresh host — keeps accounting suppression.
    #[test]
    fn pushdown_rides_failover_and_never_perturbs_the_cluster() {
        let run = |pushdown: bool| {
            let mut config = failover_config(37);
            if pushdown {
                config.engine = config.engine.clone().with_pushdown();
            }
            let mut cluster = ShardManager::new(config, lab());
            admit_queries(&mut cluster, true);
            let mut plan = FaultPlan::new();
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(150),
                FaultEvent::ProcessCrash(DeviceId::camera(0)),
            );
            cluster.inject_faults(plan);
            cluster.run_for(RUN);
            cluster
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.stats(), off.stats());
        assert_eq!(on.render_trace(), off.render_trace());
        assert_eq!(on.stats().failovers, 1, "the failover must still happen");
        for s in 0..on.shard_count() {
            let push = on.shard(s).pushdown_stats();
            assert!(
                push.suppressed_tuples > 0,
                "shard {s} suppressed nothing: {push:?}"
            );
            assert!(
                push.wire_bytes() < push.baseline_bytes,
                "shard {s} saved no bytes: {push:?}"
            );
            assert_eq!(
                off.shard(s).pushdown_stats(),
                aorta_core::PushdownStats::default(),
                "baseline shard {s} must not account pushdown"
            );
            assert!(
                on.shard(s).config().pushdown,
                "shard {s} lost the flag (failover rebuilds from the config template)"
            );
        }
    }

    #[test]
    fn failover_under_partition_is_deterministic() {
        let run = || {
            let mut cluster = ShardManager::new(failover_config(29), lab());
            admit_queries(&mut cluster, false);
            let mut plan = FaultPlan::new();
            // Kill shard 0's cameras so escalations flow, then the owning
            // process, inside an asymmetric gateway blackout s0 -> s1.
            for c in 0..12u32 {
                let id = DeviceId::camera(c);
                if cluster.shard_owning(id) == Some(0) {
                    plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
                }
            }
            let mote = (0..16u32)
                .map(DeviceId::sensor)
                .find(|&d| cluster.shard_owning(d) == Some(0))
                .expect("shard 0 owns a mote");
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(145),
                FaultEvent::Partition {
                    a: 0,
                    b: 1,
                    window: SimDuration::from_secs(20),
                },
            );
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(150),
                FaultEvent::ProcessCrash(mote),
            );
            cluster.inject_faults(plan);
            cluster.run_for(RUN);
            let stats = cluster.stats();
            stats.check_conservation().unwrap();
            assert_eq!(stats.late_successes(), 0);
            assert_eq!(stats.failovers, 1, "the mote crash must fail over");
            (
                cluster.render_trace(),
                format!("{stats:?}"),
                format!("{:?}", cluster.failover_report()),
            )
        };
        let a = run();
        assert_eq!(a, run(), "failover must be byte-identical per seed");
        assert!(a.0.contains("failover complete"));
    }

    #[test]
    fn escalations_park_with_backoff_instead_of_immediate_reinjection() {
        let mut cluster = ShardManager::new(failover_config(11), lab());
        admit_queries(&mut cluster, false);
        let mut plan = FaultPlan::new();
        for c in 0..12u32 {
            let id = DeviceId::camera(c);
            if cluster.shard_owning(id) == Some(0) {
                plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
            }
        }
        assert!(!plan.is_empty(), "stripe 0 owned no cameras");
        cluster.inject_faults(plan);
        cluster.run_for(RUN);

        let stats = cluster.stats();
        stats.check_conservation().unwrap();
        assert!(cluster.rerouted() > 0, "deliveries must still happen");
        assert!(
            cluster.gateway_trace().any("gateway", "parked (attempt 1)"),
            "escalations must park before delivery"
        );
        assert!(
            cluster.gateway_trace().any("gateway", "delivered s0 -> s1"),
            "parked escalations must be delivered after backoff"
        );
        assert!(
            stats.per_shard[1].escalated_in > 0,
            "sibling adopted nothing: {stats:?}"
        );
    }

    #[test]
    fn stale_epoch_escalations_are_fenced_not_double_applied() {
        let victim = DeviceId::camera(0);
        // Two arms differing only in a stale-epoch (zombie) message
        // delivered after the failover: the rejection must have zero
        // footprint on every engine — counted, never applied.
        let run = |inject_zombie: bool| {
            let mut cluster = ShardManager::new(failover_config(23), lab());
            admit_queries(&mut cluster, true);
            let owner = cluster.shard_owning(victim).expect("owned");
            let old_epoch = cluster.shard_epoch(owner);
            let mut plan = FaultPlan::new();
            plan.schedule(
                SimTime::ZERO + SimDuration::from_secs(150),
                FaultEvent::ProcessCrash(victim),
            );
            cluster.inject_faults(plan);
            cluster.run_for(RUN);
            assert_eq!(cluster.shard_epoch(owner), old_epoch + 1);
            if inject_zombie {
                assert!(!cluster.inject_escalation(owner, old_epoch, zombie_request()));
                assert_eq!(cluster.zombie_rejects(), 1);
                assert_eq!(cluster.parked_requests(), 0, "a zombie must never park");
            }
            cluster.run_for(SimDuration::from_secs(30));
            let stats = cluster.stats();
            stats.check_conservation().unwrap();
            assert_eq!(stats.zombie_rejects, u64::from(inject_zombie));
            assert!(
                !inject_zombie
                    || cluster
                        .gateway_trace()
                        .any("gateway", "stale-epoch escalation"),
                "the rejection must be visible in the gateway trace"
            );
            (cluster, stats, owner, old_epoch)
        };
        let (_, clean_stats, ..) = run(false);
        let (mut cluster, zombie_stats, owner, old_epoch) = run(true);
        assert_eq!(
            zombie_stats.per_shard, clean_stats.per_shard,
            "a fenced message must never touch any engine"
        );
        assert_eq!(zombie_stats.executed(), clean_stats.executed());

        // A current-epoch message is admitted into the parked path.
        assert!(cluster.inject_escalation(owner, old_epoch + 1, zombie_request()));
        assert_eq!(cluster.parked_requests(), 1);
    }

    #[test]
    fn partition_window_blocks_routing_without_failover() {
        // Partitions apply even on the immediate-injection path: a window
        // covering the whole run on the only escape path s0 -> s1 forces
        // terminal drops instead of reroutes — counted, never lost.
        let run = |partitioned: bool| {
            let mut cluster = ShardManager::new(
                ClusterConfig::seeded(11, 2).with_imbalance_threshold(u64::MAX),
                lab(),
            );
            admit_queries(&mut cluster, false);
            let mut plan = FaultPlan::new();
            for c in 0..12u32 {
                let id = DeviceId::camera(c);
                if cluster.shard_owning(id) == Some(0) {
                    plan.schedule(SimTime::from_micros(1), FaultEvent::Crash(id));
                }
            }
            if partitioned {
                plan.schedule(
                    SimTime::ZERO,
                    FaultEvent::Partition {
                        a: 0,
                        b: 1,
                        window: RUN + RUN,
                    },
                );
            }
            cluster.inject_faults(plan);
            cluster.run_for(RUN);
            let stats = cluster.stats();
            stats.check_conservation().unwrap();
            (cluster.rerouted(), stats.gateway_dropped)
        };
        let (rerouted_open, _) = run(false);
        let (rerouted_blocked, dropped_blocked) = run(true);
        assert!(rerouted_open > 0);
        assert_eq!(rerouted_blocked, 0, "a blackout path must carry nothing");
        assert!(dropped_blocked > 0, "blocked escalations are counted drops");
    }

    #[test]
    fn cluster_trace_is_byte_identical_per_seed() {
        let run = |seed| {
            let mut cluster = ShardManager::new(ClusterConfig::seeded(seed, 2), lab());
            admit_queries(&mut cluster, true);
            cluster.run_for(SimDuration::from_mins(3));
            cluster.render_trace()
        };
        let a = run(31);
        assert!(!a.is_empty());
        assert_eq!(a, run(31));
        assert_ne!(a, run(32), "different seeds should diverge");
    }
}
