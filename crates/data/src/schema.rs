//! Virtual-table schemas.

use std::fmt;
use std::sync::Arc;

use crate::{DataError, Tuple, ValueType};

/// Whether an attribute must be acquired live from the device or can be
/// served from static metadata (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Real-time data acquired by *sensing* the device: sensor readings,
    /// camera head position, battery voltage.
    Sensory,
    /// Static data served from the registry cache: locations, IP addresses,
    /// phone numbers.
    NonSensory,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Sensory => f.write_str("sensory"),
            AttrKind::NonSensory => f.write_str("non-sensory"),
        }
    }
}

/// One attribute of a virtual device table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    name: String,
    value_type: ValueType,
    kind: AttrKind,
}

impl AttrDef {
    /// Creates an attribute definition.
    pub fn new(name: impl Into<String>, value_type: ValueType, kind: AttrKind) -> Self {
        AttrDef {
            name: name.into(),
            value_type,
            kind,
        }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's declared type.
    pub fn value_type(&self) -> ValueType {
        self.value_type
    }

    /// Whether the attribute is sensory or non-sensory.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }
}

/// The schema of a virtual device table (e.g. `sensor`, `camera`, `phone`).
///
/// Cheap to clone (`Arc` internally); attribute lookups are by name.
///
/// # Example
///
/// ```
/// use aorta_data::{AttrKind, Schema, ValueType};
///
/// let s = Schema::builder("camera")
///     .attr("id", ValueType::Int, AttrKind::NonSensory)
///     .attr("pan", ValueType::Float, AttrKind::Sensory)
///     .build();
/// assert_eq!(s.table(), "camera");
/// assert_eq!(s.attr(1).unwrap().name(), "pan");
/// assert!(s.sensory().any(|a| a.name() == "pan"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    table: String,
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Starts building a schema for the named table.
    pub fn builder(table: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            table: table.into(),
            attrs: Vec::new(),
        }
    }

    /// The table name.
    pub fn table(&self) -> &str {
        &self.inner.table
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.inner.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// The attribute at `index`.
    pub fn attr(&self, index: usize) -> Option<&AttrDef> {
        self.inner.attrs.get(index)
    }

    /// The position of the named attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.inner.attrs.iter().position(|a| a.name == name)
    }

    /// The named attribute's definition.
    ///
    /// # Errors
    ///
    /// [`DataError::NoSuchAttribute`] when absent.
    pub fn require(&self, name: &str) -> Result<&AttrDef, DataError> {
        self.inner
            .attrs
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| DataError::NoSuchAttribute(self.inner.table.clone(), name.to_string()))
    }

    /// Iterates over all attributes in declaration order.
    pub fn iter(&self) -> std::slice::Iter<'_, AttrDef> {
        self.inner.attrs.iter()
    }

    /// Iterates over sensory attributes only.
    pub fn sensory(&self) -> impl Iterator<Item = &AttrDef> {
        self.iter().filter(|a| a.kind == AttrKind::Sensory)
    }

    /// Iterates over non-sensory attributes only.
    pub fn non_sensory(&self) -> impl Iterator<Item = &AttrDef> {
        self.iter().filter(|a| a.kind == AttrKind::NonSensory)
    }

    /// Validates a tuple against this schema (arity and value types).
    ///
    /// # Errors
    ///
    /// [`DataError::ArityMismatch`] or [`DataError::TypeMismatch`].
    pub fn check(&self, tuple: &Tuple) -> Result<(), DataError> {
        if tuple.len() != self.len() {
            return Err(DataError::ArityMismatch {
                table: self.inner.table.clone(),
                expected: self.len(),
                actual: tuple.len(),
            });
        }
        for (attr, value) in self.iter().zip(tuple.values()) {
            if !value.conforms_to(attr.value_type) {
                return Err(DataError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.value_type.to_string(),
                    actual: value.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.inner.table)?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.value_type)?;
        }
        write!(f, ")")
    }
}

/// Incremental [`Schema`] construction.
#[derive(Debug)]
pub struct SchemaBuilder {
    table: String,
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Appends an attribute.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate attribute name — schemas are static program
    /// data, so this is a programming error rather than a runtime condition.
    pub fn attr(mut self, name: impl Into<String>, value_type: ValueType, kind: AttrKind) -> Self {
        let name = name.into();
        assert!(
            !self.attrs.iter().any(|a| a.name == name),
            "duplicate attribute '{name}' in schema for '{}'",
            self.table
        );
        self.attrs.push(AttrDef::new(name, value_type, kind));
        self
    }

    /// Finishes the schema.
    pub fn build(self) -> Schema {
        Schema {
            inner: Arc::new(SchemaInner {
                table: self.table,
                attrs: self.attrs,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Location, Value};

    fn sensor_schema() -> Schema {
        Schema::builder("sensor")
            .attr("id", ValueType::Int, AttrKind::NonSensory)
            .attr("loc", ValueType::Location, AttrKind::NonSensory)
            .attr("accel_x", ValueType::Int, AttrKind::Sensory)
            .attr("temp", ValueType::Float, AttrKind::Sensory)
            .build()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sensor_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("temp"), Some(3));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attr(0).unwrap().name(), "id");
        assert!(s.attr(9).is_none());
        assert!(s.require("loc").is_ok());
        assert!(matches!(
            s.require("zoom"),
            Err(DataError::NoSuchAttribute(..))
        ));
    }

    #[test]
    fn sensory_partition() {
        let s = sensor_schema();
        let sensory: Vec<&str> = s.sensory().map(|a| a.name()).collect();
        let non: Vec<&str> = s.non_sensory().map(|a| a.name()).collect();
        assert_eq!(sensory, ["accel_x", "temp"]);
        assert_eq!(non, ["id", "loc"]);
    }

    #[test]
    fn check_accepts_valid_tuple() {
        let s = sensor_schema();
        let t = Tuple::new(vec![
            Value::Int(1),
            Value::Location(Location::ORIGIN),
            Value::Int(600),
            Value::Int(22), // Int widens to Float
        ]);
        assert_eq!(s.check(&t), Ok(()));
    }

    #[test]
    fn check_accepts_nulls() {
        let s = sensor_schema();
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::Null, Value::Null]);
        assert_eq!(s.check(&t), Ok(()));
    }

    #[test]
    fn check_rejects_arity_and_type() {
        let s = sensor_schema();
        assert!(matches!(
            s.check(&Tuple::new(vec![Value::Int(1)])),
            Err(DataError::ArityMismatch { .. })
        ));
        let bad = Tuple::new(vec![
            Value::Int(1),
            Value::from("not a location"),
            Value::Int(600),
            Value::Float(22.0),
        ]);
        assert!(matches!(s.check(&bad), Err(DataError::TypeMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attr_panics() {
        let _ = Schema::builder("t")
            .attr("a", ValueType::Int, AttrKind::Sensory)
            .attr("a", ValueType::Int, AttrKind::Sensory);
    }

    #[test]
    fn display_lists_attributes() {
        let s = sensor_schema();
        assert_eq!(
            s.to_string(),
            "sensor(id INT, loc LOCATION, accel_x INT, temp FLOAT)"
        );
    }

    #[test]
    fn clone_is_shallow() {
        let s = sensor_schema();
        let s2 = s.clone();
        assert_eq!(s, s2);
        assert!(Arc::ptr_eq(&s.inner, &s2.inner));
    }
}
