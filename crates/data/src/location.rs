//! Physical locations in the monitored space.

use std::fmt;

/// A point in the monitored space, in metres.
///
/// Sensor motes have fixed locations (paper §3.2 assumes so); camera mounts
/// have locations and view ranges; `photo()` targets are locations.
///
/// # Example
///
/// ```
/// use aorta_data::Location;
///
/// let door = Location::new(0.0, 3.0, 1.0);
/// let desk = Location::new(4.0, 0.0, 1.0);
/// assert_eq!(door.distance(&desk), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// East–west coordinate, metres.
    pub x: f64,
    /// North–south coordinate, metres.
    pub y: f64,
    /// Height, metres.
    pub z: f64,
}

impl Location {
    /// The origin.
    pub const ORIGIN: Location = Location {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a location from coordinates in metres.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Location { x, y, z }
    }

    /// Euclidean distance to `other`, metres.
    pub fn distance(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Horizontal (x–y plane) distance to `other`, metres.
    pub fn horizontal_distance(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Bearing of `other` from `self` in the x–y plane, degrees in
    /// `(-180, 180]` measured counter-clockwise from the +x axis.
    pub fn bearing_to(&self, other: &Location) -> f64 {
        (other.y - self.y).atan2(other.x - self.x).to_degrees()
    }

    /// Elevation angle of `other` from `self`, degrees in `[-90, 90]`.
    pub fn elevation_to(&self, other: &Location) -> f64 {
        let h = self.horizontal_distance(other);
        let dz = other.z - self.z;
        dz.atan2(h).to_degrees()
    }

    /// Parses from the `"x,y,z"` format used in profile files.
    ///
    /// # Errors
    ///
    /// Returns a message when the string is not three comma-separated
    /// finite numbers.
    pub fn parse(s: &str) -> Result<Location, String> {
        let parts: Vec<&str> = s.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(format!("location '{s}' must have exactly 3 coordinates"));
        }
        let mut coords = [0.0f64; 3];
        for (slot, part) in coords.iter_mut().zip(&parts) {
            *slot = part
                .parse::<f64>()
                .map_err(|_| format!("location coordinate '{part}' is not a number"))?;
            if !slot.is_finite() {
                return Err(format!("location coordinate '{part}' is not finite"));
            }
        }
        Ok(Location::new(coords[0], coords[1], coords[2]))
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{},{}", self.x, self.y, self.z)
    }
}

impl std::str::FromStr for Location {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Location::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_classic_triangle() {
        let a = Location::new(0.0, 0.0, 0.0);
        let b = Location::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.horizontal_distance(&b), 5.0);
    }

    #[test]
    fn vertical_component_counts_in_3d_only() {
        let a = Location::new(0.0, 0.0, 0.0);
        let b = Location::new(0.0, 0.0, 2.0);
        assert_eq!(a.distance(&b), 2.0);
        assert_eq!(a.horizontal_distance(&b), 0.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Location::ORIGIN;
        assert_eq!(o.bearing_to(&Location::new(1.0, 0.0, 0.0)), 0.0);
        assert_eq!(o.bearing_to(&Location::new(0.0, 1.0, 0.0)), 90.0);
        assert_eq!(o.bearing_to(&Location::new(-1.0, 0.0, 0.0)), 180.0);
        assert_eq!(o.bearing_to(&Location::new(0.0, -1.0, 0.0)), -90.0);
    }

    #[test]
    fn elevation_angles() {
        let cam = Location::new(0.0, 0.0, 3.0);
        let floor = Location::new(3.0, 0.0, 0.0);
        assert!((cam.elevation_to(&floor) + 45.0).abs() < 1e-9);
        let up = Location::new(0.0, 0.0, 5.0);
        assert_eq!(cam.elevation_to(&up), 90.0);
    }

    #[test]
    fn parse_round_trip() {
        let l = Location::new(1.5, -2.0, 0.25);
        assert_eq!(Location::parse(&l.to_string()), Ok(l));
        assert_eq!(
            "1, 2, 3".parse::<Location>(),
            Ok(Location::new(1.0, 2.0, 3.0))
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Location::parse("1,2").is_err());
        assert!(Location::parse("a,b,c").is_err());
        assert!(Location::parse("1,2,inf").is_err());
        assert!(Location::parse("").is_err());
    }

    proptest! {
        #[test]
        fn prop_distance_symmetric(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                   bx in -100.0..100.0f64, by in -100.0..100.0f64) {
            let a = Location::new(ax, ay, 0.0);
            let b = Location::new(bx, by, 0.0);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(coords in proptest::collection::vec(-50.0..50.0f64, 9)) {
            let a = Location::new(coords[0], coords[1], coords[2]);
            let b = Location::new(coords[3], coords[4], coords[5]);
            let c = Location::new(coords[6], coords[7], coords[8]);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn prop_parse_round_trip(x in -1000.0..1000.0f64, y in -1000.0..1000.0f64, z in -10.0..10.0f64) {
            let l = Location::new(x, y, z);
            let parsed = Location::parse(&l.to_string()).unwrap();
            prop_assert!((parsed.x - l.x).abs() < 1e-9);
            prop_assert!((parsed.y - l.y).abs() < 1e-9);
            prop_assert!((parsed.z - l.z).abs() < 1e-9);
        }
    }
}
