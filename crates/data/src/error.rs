//! Error type for the data model.

use std::error::Error;
use std::fmt;

/// Errors raised by data-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An unknown type name in a schema or profile.
    UnknownType(String),
    /// Two values that cannot be ordered against each other.
    Incomparable(String, String),
    /// A schema refers to an attribute that does not exist.
    NoSuchAttribute(String, String),
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// The table whose schema was violated.
        table: String,
        /// Attributes in the schema.
        expected: usize,
        /// Values in the tuple.
        actual: usize,
    },
    /// A value of the wrong type for its attribute.
    TypeMismatch {
        /// The offending attribute.
        attribute: String,
        /// Declared type name.
        expected: String,
        /// Observed value rendering.
        actual: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownType(t) => write!(f, "unknown type name '{t}'"),
            DataError::Incomparable(a, b) => write!(f, "values {a} and {b} are not comparable"),
            DataError::NoSuchAttribute(table, attr) => {
                write!(f, "table '{table}' has no attribute '{attr}'")
            }
            DataError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "tuple for table '{table}' has {actual} values, schema expects {expected}"
            ),
            DataError::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "attribute '{attribute}' expects {expected}, got {actual}"
            ),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<(DataError, &str)> = vec![
            (DataError::UnknownType("W".into()), "unknown type"),
            (
                DataError::Incomparable("1".into(), "\"a\"".into()),
                "not comparable",
            ),
            (
                DataError::NoSuchAttribute("sensor".into(), "zoom".into()),
                "no attribute",
            ),
            (
                DataError::ArityMismatch {
                    table: "camera".into(),
                    expected: 4,
                    actual: 2,
                },
                "schema expects 4",
            ),
            (
                DataError::TypeMismatch {
                    attribute: "loc".into(),
                    expected: "LOCATION".into(),
                    actual: "7".into(),
                },
                "expects LOCATION",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg}");
            assert!(!msg.ends_with('.'));
        }
    }
}
