//! Runtime values and their types.

use std::cmp::Ordering;
use std::fmt;

use crate::{DataError, Location};

/// The type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// A physical [`Location`].
    Location,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Bool => "BOOL",
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Str => "STRING",
            ValueType::Location => "LOCATION",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for ValueType {
    type Err = DataError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(ValueType::Bool),
            "INT" | "INTEGER" => Ok(ValueType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(ValueType::Float),
            "STRING" | "STR" | "TEXT" | "VARCHAR" => Ok(ValueType::Str),
            "LOCATION" | "LOC" => Ok(ValueType::Location),
            other => Err(DataError::UnknownType(other.to_string())),
        }
    }
}

/// A runtime value flowing through scan operators, predicates and actions.
///
/// # Example
///
/// ```
/// use aorta_data::Value;
///
/// let v = Value::Int(500);
/// assert!(v.compare(&Value::Float(499.5)).unwrap().is_gt());
/// assert_eq!(v.as_f64(), Some(500.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL — an attribute whose acquisition failed.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Physical location.
    Location(Location),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Location(_) => Some(ValueType::Location),
        }
    }

    /// True when this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` (and `Bool` as 0/1) convert; others
    /// yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view without loss; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Location view; `None` for non-locations.
    pub fn as_location(&self) -> Option<&Location> {
        match self {
            Value::Location(l) => Some(l),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison.
    ///
    /// Numeric types compare cross-type (`Int` vs `Float`); strings compare
    /// lexicographically; booleans as `false < true`.
    ///
    /// # Errors
    ///
    /// [`DataError::Incomparable`] for NULL operands, locations, or
    /// mixed non-numeric types.
    pub fn compare(&self, other: &Value) -> Result<Ordering, DataError> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Ok(a.cmp(b)),
            (Str(a), Str(b)) => Ok(a.cmp(b)),
            (Bool(a), Bool(b)) => Ok(a.cmp(b)),
            (a, b) => {
                if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                    x.partial_cmp(&y).ok_or_else(|| incomparable(a, b))
                } else {
                    Err(incomparable(a, b))
                }
            }
        }
    }

    /// Checks that the value is acceptable where `expected` is required.
    ///
    /// NULL is acceptable everywhere; `Int` is acceptable where `Float` is
    /// expected (widening).
    pub fn conforms_to(&self, expected: ValueType) -> bool {
        match (self.value_type(), expected) {
            (None, _) => true,
            (Some(ValueType::Int), ValueType::Float) => true,
            (Some(t), e) => t == e,
        }
    }
}

fn incomparable(a: &Value, b: &Value) -> DataError {
    DataError::Incomparable(format!("{a}"), format!("{b}"))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Location(l) => write!(f, "({l})"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Location> for Value {
    fn from(l: Location) -> Self {
        Value::Location(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_round_trip() {
        for t in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Location,
        ] {
            let parsed: ValueType = t.to_string().parse().unwrap();
            assert_eq!(parsed, t);
        }
        assert!("WIDGET".parse::<ValueType>().is_err());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(500).compare(&Value::Float(500.0)).unwrap(),
            Ordering::Equal
        );
        assert!(Value::Int(501)
            .compare(&Value::Float(500.5))
            .unwrap()
            .is_gt());
        assert!(Value::Float(0.5).compare(&Value::Int(1)).unwrap().is_lt());
    }

    #[test]
    fn string_and_bool_comparison() {
        assert!(Value::from("abc")
            .compare(&Value::from("abd"))
            .unwrap()
            .is_lt());
        assert!(Value::Bool(false)
            .compare(&Value::Bool(true))
            .unwrap()
            .is_lt());
    }

    #[test]
    fn null_and_location_incomparable() {
        assert!(Value::Null.compare(&Value::Int(1)).is_err());
        let l = Value::Location(Location::ORIGIN);
        assert!(l.compare(&l.clone()).is_err());
        assert!(Value::from("x").compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn nan_comparison_is_error_not_panic() {
        let err = Value::Float(f64::NAN).compare(&Value::Float(1.0));
        assert!(err.is_err());
    }

    #[test]
    fn conforms_widens_int_to_float() {
        assert!(Value::Int(3).conforms_to(ValueType::Float));
        assert!(!Value::Float(3.0).conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Location));
        assert!(Value::from("x").conforms_to(ValueType::Str));
    }

    #[test]
    fn accessor_views() {
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(1.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Location(Location::ORIGIN).as_location().is_some());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::Location(Location::new(1.0, 2.0, 3.0)).to_string(),
            "(1,2,3)"
        );
    }
}
