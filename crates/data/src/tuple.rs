//! Tuples flowing through the query engine.

use std::fmt;

use crate::Value;

/// A row of values, optionally tagged with the IDs of the queries it belongs
/// to.
///
/// The paper (§2.3) shares one action operator among concurrent queries with
/// the same embedded action and "adds the query ID to the input tuples of a
/// query so that the operator knows which tuples are for which query" —
/// hence the tag set.
///
/// # Example
///
/// ```
/// use aorta_data::{Tuple, Value};
///
/// let t = Tuple::new(vec![Value::Int(1), Value::from("hall")]).tagged(7);
/// assert_eq!(t.get(1), Some(&Value::from("hall")));
/// assert!(t.has_tag(7));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
    query_tags: Vec<u32>,
}

impl Tuple {
    /// Creates an untagged tuple.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values,
            query_tags: Vec::new(),
        }
    }

    /// An empty tuple (zero attributes).
    pub fn empty() -> Self {
        Tuple::default()
    }

    /// Adds a query-ID tag, returning `self` (builder style).
    pub fn tagged(mut self, query_id: u32) -> Self {
        self.add_tag(query_id);
        self
    }

    /// Adds a query-ID tag if not already present.
    pub fn add_tag(&mut self, query_id: u32) {
        if !self.query_tags.contains(&query_id) {
            self.query_tags.push(query_id);
        }
    }

    /// True if the tuple is tagged for the given query.
    pub fn has_tag(&self, query_id: u32) -> bool {
        self.query_tags.contains(&query_id)
    }

    /// The query-ID tags in insertion order.
    pub fn tags(&self) -> &[u32] {
        &self.query_tags
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at `index`.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenates two tuples (used by the candidate join), merging tags.
    pub fn concat(mut self, other: Tuple) -> Tuple {
        self.values.extend(other.values);
        for t in other.query_tags {
            self.add_tag(t);
        }
        self
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t: Tuple = [Value::Int(1), Value::from("x")].into_iter().collect();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(5), None);
        assert_eq!(t.values().len(), 2);
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn tags_dedupe() {
        let mut t = Tuple::new(vec![]).tagged(1).tagged(2).tagged(1);
        assert_eq!(t.tags(), &[1, 2]);
        t.add_tag(2);
        assert_eq!(t.tags(), &[1, 2]);
        assert!(t.has_tag(2));
        assert!(!t.has_tag(3));
    }

    #[test]
    fn concat_merges_values_and_tags() {
        let a = Tuple::new(vec![Value::Int(1)]).tagged(1);
        let b = Tuple::new(vec![Value::Int(2)]).tagged(1).tagged(2);
        let c = a.concat(b);
        assert_eq!(c.values(), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(c.tags(), &[1, 2]);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::from("a"), Value::Null]);
        assert_eq!(t.to_string(), "(1, \"a\", NULL)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn into_values_round_trip() {
        let t = Tuple::new(vec![Value::Int(9)]);
        assert_eq!(t.into_values(), vec![Value::Int(9)]);
    }
}
