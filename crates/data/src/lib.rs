//! # aorta-data — relational data model
//!
//! The uniform data communication layer abstracts each device type into a
//! *virtual relational table* (paper §3.2): every tuple comes from one
//! device, attributes are either **sensory** (acquired live — sensor
//! readings, camera head position, battery voltage) or **non-sensory**
//! (static — locations, IP addresses, phone numbers). This crate defines the
//! value, schema and tuple types shared by the communication layer, the SQL
//! front-end and the query engine.
//!
//! # Example
//!
//! ```
//! use aorta_data::{AttrKind, Location, Schema, Tuple, Value, ValueType};
//!
//! let schema = Schema::builder("sensor")
//!     .attr("id", ValueType::Int, AttrKind::NonSensory)
//!     .attr("loc", ValueType::Location, AttrKind::NonSensory)
//!     .attr("accel_x", ValueType::Int, AttrKind::Sensory)
//!     .build();
//! let tuple = Tuple::new(vec![
//!     Value::Int(3),
//!     Value::Location(Location::new(1.0, 2.0, 0.0)),
//!     Value::Int(612),
//! ]);
//! assert_eq!(schema.index_of("accel_x"), Some(2));
//! assert_eq!(tuple.get(2), Some(&Value::Int(612)));
//! ```

#![warn(missing_docs)]

mod error;
mod location;
mod schema;
mod tuple;
mod value;

pub use error::DataError;
pub use location::Location;
pub use schema::{AttrDef, AttrKind, Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
