//! Deterministic fault injection on the virtual clock.
//!
//! A [`FaultPlan`] is a pre-computed, seeded schedule of fault events —
//! device crashes/recoveries, burst message loss, and probe-latency spikes —
//! that a simulation drains as its clock advances. Because the whole plan is
//! derived up front from a seed, two runs with the same seed experience
//! byte-identical fault sequences, which is what makes failure experiments
//! reproducible and failover tests assertable.
//!
//! The plan is generic over the device identifier type `D` so this base
//! crate stays independent of the device model: the engine instantiates it
//! with its own `DeviceId`.
//!
//! # Example
//!
//! ```
//! use aorta_sim::{FaultConfig, FaultEvent, FaultPlan, SimDuration, SimTime};
//!
//! let cfg = FaultConfig {
//!     crash_rate: 1.0, // every device crashes in every period
//!     ..FaultConfig::default()
//! };
//! let mut plan = FaultPlan::generate(7, SimDuration::from_secs(30), &["cam-0"], &cfg);
//! let due = plan.pop_due(SimTime::ZERO + SimDuration::from_mins(5));
//! assert!(due
//!     .iter()
//!     .any(|(_, e)| matches!(e, FaultEvent::Crash("cam-0"))));
//! ```

use crate::{SimDuration, SimRng, SimTime};

/// One injected fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent<D> {
    /// The device goes dark: it stops answering probes and commands until
    /// the matching [`FaultEvent::Recover`].
    Crash(D),
    /// The device comes back online.
    Recover(D),
    /// A burst of correlated message loss begins: every link's loss
    /// probability increases by `extra_loss` (clamped to 1) until the
    /// matching [`FaultEvent::LossBurstEnd`].
    LossBurstStart {
        /// Additional per-message loss probability during the burst.
        extra_loss: f64,
    },
    /// The current loss burst ends.
    LossBurstEnd,
    /// A probe-latency spike begins: every link's base latency is multiplied
    /// by `factor` until the matching [`FaultEvent::LatencySpikeEnd`].
    LatencySpikeStart {
        /// Multiplier applied to base link latency during the spike.
        factor: f64,
    },
    /// The current latency spike ends.
    LatencySpikeEnd,
    /// The *process hosting* the engine that owns device `D` dies — not a
    /// device fault but a control-plane fault. The engine halts on the spot
    /// (zero observable footprint: no trace or stat change) and stays dead
    /// until its supervisor recovers it from the write-ahead log. The
    /// device identifier exists only to route the event to the owning shard
    /// when a plan is [`split_by`](FaultPlan::split_by) shard ownership.
    ProcessCrash(D),
    /// An asymmetric network partition opens between two shards: messages
    /// from shard `a` to shard `b` are blocked for `window`, while the
    /// reverse direction keeps flowing. Asymmetry is the hard case for
    /// fencing — shard `b` can look alive to `a`'s zombie incarnation while
    /// the gateway has already failed it over. A cluster-scope event:
    /// engines ignore it ([`split_by`](FaultPlan::split_by) replicates it
    /// like other global events, where it is a no-op), and the cluster
    /// gateway extracts the windows before splitting.
    Partition {
        /// Source shard whose outbound messages are blocked.
        a: u32,
        /// Destination shard that stops hearing from `a`.
        b: u32,
        /// How long the one-way blackout lasts.
        window: SimDuration,
    },
}

/// Parameters for seeded fault generation.
///
/// Rates are per evaluation [`period`](FaultConfig::period): a `crash_rate`
/// of `0.2` means each device has a 20% chance of starting an outage in each
/// 10-second window (with the default period).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Granularity at which fault opportunities are drawn.
    pub period: SimDuration,
    /// Per-device probability of a crash starting in each period.
    pub crash_rate: f64,
    /// Mean outage length; actual outages are uniform in `[0.5, 1.5] ×` this.
    pub mean_downtime: SimDuration,
    /// Probability per period that a global loss burst starts.
    pub loss_burst_rate: f64,
    /// Length of each loss burst.
    pub loss_burst_len: SimDuration,
    /// Extra loss probability applied during a burst.
    pub extra_loss: f64,
    /// Probability per period that a latency spike starts.
    pub latency_spike_rate: f64,
    /// Length of each latency spike.
    pub latency_spike_len: SimDuration,
    /// Base-latency multiplier during a spike.
    pub latency_factor: f64,
    /// Probability per period that the process hosting a shard crashes
    /// ([`FaultEvent::ProcessCrash`]). Zero by default: process crashes are
    /// only meaningful when a WAL-backed supervisor can recover the shard,
    /// so plans stay byte-identical to pre-WAL generations unless opted in.
    pub process_crash_rate: f64,
    /// Probability per period that an asymmetric partition opens between an
    /// ordered pair of shards ([`FaultEvent::Partition`]). Zero by default
    /// (and inert unless [`partition_peers`](FaultConfig::partition_peers)
    /// names at least two shards), so plans stay byte-identical to older
    /// generations unless opted in.
    pub partition_rate: f64,
    /// Length of each partition window.
    pub partition_window: SimDuration,
    /// Number of shards partition pairs are drawn from. Zero (the default)
    /// disables partition generation entirely.
    pub partition_peers: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            period: SimDuration::from_secs(10),
            crash_rate: 0.2,
            mean_downtime: SimDuration::from_secs(5),
            loss_burst_rate: 0.1,
            loss_burst_len: SimDuration::from_secs(3),
            extra_loss: 0.5,
            latency_spike_rate: 0.1,
            latency_spike_len: SimDuration::from_secs(3),
            latency_factor: 10.0,
            process_crash_rate: 0.0,
            partition_rate: 0.0,
            partition_window: SimDuration::from_secs(20),
            partition_peers: 0,
        }
    }
}

impl FaultConfig {
    /// A config that injects nothing (useful as a baseline arm).
    pub fn quiescent() -> Self {
        FaultConfig {
            crash_rate: 0.0,
            loss_burst_rate: 0.0,
            latency_spike_rate: 0.0,
            ..FaultConfig::default()
        }
    }
}

/// A seeded, time-sorted schedule of fault events, drained as the virtual
/// clock advances.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan<D> {
    /// Sorted by time; ties keep insertion order (stable sort).
    events: Vec<(SimTime, FaultEvent<D>)>,
    /// Index of the next undrained event.
    cursor: usize,
}

impl<D: Copy> FaultPlan<D> {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// Generates a plan over `devices` covering `[0, horizon]`.
    ///
    /// Each device gets an independent crash/recovery stream forked from
    /// `seed`, so adding a device never perturbs the faults of the others.
    /// Crash and recovery events always come in pairs: a device that crashes
    /// before the horizon also recovers (possibly after it).
    pub fn generate(seed: u64, horizon: SimDuration, devices: &[D], config: &FaultConfig) -> Self {
        let end = SimTime::ZERO + horizon;
        let period = SimDuration::from_micros(config.period.as_micros().max(1));
        let mut root = SimRng::seed(seed);
        let mut events: Vec<(SimTime, FaultEvent<D>)> = Vec::new();

        // Per-device crash/recovery streams.
        for (i, &d) in devices.iter().enumerate() {
            let mut rng = root.fork(i as u64 + 1);
            let mut t = SimTime::ZERO;
            while t < end {
                if rng.chance(config.crash_rate) {
                    let at = t + SimDuration::from_micros(rng.range(0..period.as_micros()));
                    let downtime = config.mean_downtime.mul_f64(0.5 + rng.unit());
                    events.push((at, FaultEvent::Crash(d)));
                    events.push((at + downtime, FaultEvent::Recover(d)));
                    // Resume drawing after the outage: a device cannot crash
                    // while already down.
                    t = at + downtime;
                } else {
                    t += period;
                }
            }
        }

        // Global loss bursts.
        let mut rng = root.fork(0);
        let mut t = SimTime::ZERO;
        while t < end {
            if rng.chance(config.loss_burst_rate) {
                let at = t + SimDuration::from_micros(rng.range(0..period.as_micros()));
                events.push((
                    at,
                    FaultEvent::LossBurstStart {
                        extra_loss: config.extra_loss,
                    },
                ));
                events.push((at + config.loss_burst_len, FaultEvent::LossBurstEnd));
                t = at + config.loss_burst_len;
            } else {
                t += period;
            }
        }

        // Global latency spikes.
        let mut rng = root.fork(u64::MAX);
        let mut t = SimTime::ZERO;
        while t < end {
            if rng.chance(config.latency_spike_rate) {
                let at = t + SimDuration::from_micros(rng.range(0..period.as_micros()));
                events.push((
                    at,
                    FaultEvent::LatencySpikeStart {
                        factor: config.latency_factor,
                    },
                ));
                events.push((at + config.latency_spike_len, FaultEvent::LatencySpikeEnd));
                t = at + config.latency_spike_len;
            } else {
                t += period;
            }
        }

        // Process crashes. This stream forks *after* every pre-existing
        // stream and defaults to rate zero, so plans generated by older
        // configs are byte-identical with or without this block. Each
        // crash names a round-robin device purely to address the owning
        // shard under `split_by`.
        let mut rng = root.fork(u64::MAX - 1);
        let mut t = SimTime::ZERO;
        let mut victim = 0usize;
        while t < end && !devices.is_empty() {
            if rng.chance(config.process_crash_rate) {
                let at = t + SimDuration::from_micros(rng.range(0..period.as_micros()));
                events.push((
                    at,
                    FaultEvent::ProcessCrash(devices[victim % devices.len()]),
                ));
                victim += 1;
                t = at + period;
            } else {
                t += period;
            }
        }

        // Asymmetric partitions. Like process crashes, this stream forks
        // after every pre-existing one and is rate-zero (and peer-zero) by
        // default, so older configs generate byte-identical plans.
        let mut rng = root.fork(u64::MAX - 2);
        let mut t = SimTime::ZERO;
        while t < end && config.partition_peers >= 2 {
            if rng.chance(config.partition_rate) {
                let at = t + SimDuration::from_micros(rng.range(0..period.as_micros()));
                let a = rng.range(0..config.partition_peers);
                // Draw b from the remaining peers so a != b always holds.
                let mut b = rng.range(0..config.partition_peers - 1);
                if b >= a {
                    b += 1;
                }
                events.push((
                    at,
                    FaultEvent::Partition {
                        a,
                        b,
                        window: config.partition_window,
                    },
                ));
                t = at + config.partition_window;
            } else {
                t += period;
            }
        }

        events.sort_by_key(|(t, _)| *t); // stable: ties keep generation order
        FaultPlan { events, cursor: 0 }
    }

    /// Adds a single hand-placed event, keeping the plan time-sorted.
    ///
    /// Events scheduled at the same instant fire in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `time` is earlier than an already-drained event.
    pub fn schedule(&mut self, time: SimTime, event: FaultEvent<D>) {
        // Upper-bound insertion point: after every event with time <= `time`.
        let idx = self.events.partition_point(|(t, _)| *t <= time);
        assert!(
            idx >= self.cursor,
            "cannot schedule a fault in already-drained time"
        );
        self.events.insert(idx, (time, event));
    }

    /// Removes and returns every event due at or before `now`, in order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, FaultEvent<D>)> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// The timestamp of the next undrained event.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|(t, _)| *t)
    }

    /// Undrained events remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Total events in the plan (drained or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Splits one plan into `shards` per-shard plans by device ownership.
    ///
    /// Device-scoped events (crash/recover) go to the shard `owner` maps
    /// their device to; global link events (loss bursts, latency spikes) are
    /// replicated into every shard, since each shard models its own links.
    /// Relative event order is preserved within every output plan, so a
    /// cluster that drains the split plans on one shared clock sees the same
    /// fault history the unsplit plan describes.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `owner` returns an out-of-range
    /// shard index.
    pub fn split_by(&self, shards: usize, mut owner: impl FnMut(&D) -> usize) -> Vec<FaultPlan<D>> {
        assert!(shards > 0, "cannot split a fault plan over zero shards");
        let mut out: Vec<FaultPlan<D>> = (0..shards).map(|_| FaultPlan::new()).collect();
        for &(t, event) in &self.events {
            match event {
                FaultEvent::Crash(d) | FaultEvent::Recover(d) | FaultEvent::ProcessCrash(d) => {
                    let s = owner(&d);
                    assert!(s < shards, "owner mapped a device to shard {s} of {shards}");
                    out[s].events.push((t, event));
                }
                _ => {
                    for plan in &mut out {
                        plan.events.push((t, event));
                    }
                }
            }
        }
        out
    }

    /// Iterates over every event in the plan (drained or not), in order.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, FaultEvent<D>)> {
        self.events.iter()
    }
}

impl<D: Copy> Default for FaultPlan<D> {
    fn default() -> Self {
        FaultPlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashes<D: Copy>(events: &[(SimTime, FaultEvent<D>)]) -> usize {
        events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Crash(_)))
            .count()
    }

    #[test]
    fn same_seed_identical_plans() {
        let cfg = FaultConfig::default();
        let horizon = SimDuration::from_mins(5);
        let devices = [1u32, 2, 3];
        let a = FaultPlan::generate(42, horizon, &devices, &cfg);
        let b = FaultPlan::generate(42, horizon, &devices, &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, horizon, &devices, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_time_sorted() {
        let plan = FaultPlan::generate(
            1,
            SimDuration::from_mins(10),
            &[0u32, 1, 2, 3],
            &FaultConfig::default(),
        );
        let times: Vec<SimTime> = plan.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            !plan.is_empty(),
            "10 minutes at default rates injects faults"
        );
    }

    #[test]
    fn crashes_pair_with_recoveries() {
        let plan = FaultPlan::generate(
            2,
            SimDuration::from_mins(10),
            &['a', 'b'],
            &FaultConfig::default(),
        );
        let events: Vec<_> = plan.iter().cloned().collect();
        let recoveries = events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::Recover(_)))
            .count();
        assert_eq!(crashes(&events), recoveries);
        // Per device, crash and recover alternate starting with a crash.
        for d in ['a', 'b'] {
            let mut down = false;
            for (_, e) in &events {
                match e {
                    FaultEvent::Crash(x) if *x == d => {
                        assert!(!down, "device {d} crashed while already down");
                        down = true;
                    }
                    FaultEvent::Recover(x) if *x == d => {
                        assert!(down, "device {d} recovered while up");
                        down = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn quiescent_config_injects_nothing() {
        let plan = FaultPlan::generate(
            3,
            SimDuration::from_mins(30),
            &[0u8, 1, 2],
            &FaultConfig::quiescent(),
        );
        assert!(plan.is_empty());
        assert_eq!(plan.peek_next_time(), None);
    }

    #[test]
    fn pop_due_drains_in_order_without_refiring() {
        let mut plan: FaultPlan<u32> = FaultPlan::new();
        plan.schedule(SimTime::from_micros(30), FaultEvent::Recover(1));
        plan.schedule(SimTime::from_micros(10), FaultEvent::Crash(1));
        plan.schedule(SimTime::from_micros(20), FaultEvent::LossBurstEnd);
        assert_eq!(plan.remaining(), 3);
        assert_eq!(plan.peek_next_time(), Some(SimTime::from_micros(10)));

        let due = plan.pop_due(SimTime::from_micros(20));
        assert_eq!(
            due,
            vec![
                (SimTime::from_micros(10), FaultEvent::Crash(1)),
                (SimTime::from_micros(20), FaultEvent::LossBurstEnd),
            ]
        );
        // Already-drained events never fire again.
        assert!(plan.pop_due(SimTime::from_micros(20)).is_empty());
        assert_eq!(plan.remaining(), 1);
        let rest = plan.pop_due(SimTime::MAX);
        assert_eq!(
            rest,
            vec![(SimTime::from_micros(30), FaultEvent::Recover(1))]
        );
    }

    #[test]
    fn schedule_keeps_fifo_on_ties() {
        let mut plan: FaultPlan<u32> = FaultPlan::new();
        let t = SimTime::from_micros(5);
        plan.schedule(t, FaultEvent::Crash(1));
        plan.schedule(t, FaultEvent::Crash(2));
        plan.schedule(t, FaultEvent::Crash(3));
        let due = plan.pop_due(t);
        let ids: Vec<u32> = due
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::Crash(d) => Some(*d),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn higher_crash_rate_means_more_crashes() {
        let horizon = SimDuration::from_mins(10);
        let devices: Vec<u32> = (0..8).collect();
        let low = FaultPlan::generate(
            5,
            horizon,
            &devices,
            &FaultConfig {
                crash_rate: 0.05,
                ..FaultConfig::quiescent()
            },
        );
        let high = FaultPlan::generate(
            5,
            horizon,
            &devices,
            &FaultConfig {
                crash_rate: 0.8,
                ..FaultConfig::quiescent()
            },
        );
        let low_events: Vec<_> = low.iter().cloned().collect();
        let high_events: Vec<_> = high.iter().cloned().collect();
        assert!(
            crashes(&high_events) > crashes(&low_events) * 2,
            "high {} vs low {}",
            crashes(&high_events),
            crashes(&low_events)
        );
    }

    #[test]
    fn process_crashes_are_plan_driven_and_leave_other_streams_untouched() {
        let horizon = SimDuration::from_mins(10);
        let devices: Vec<u32> = (0..4).collect();
        let base = FaultPlan::generate(11, horizon, &devices, &FaultConfig::default());
        let with_pc = FaultPlan::generate(
            11,
            horizon,
            &devices,
            &FaultConfig {
                process_crash_rate: 0.3,
                ..FaultConfig::default()
            },
        );
        let non_pc = |p: &FaultPlan<u32>| {
            p.iter()
                .filter(|(_, e)| !matches!(e, FaultEvent::ProcessCrash(_)))
                .cloned()
                .collect::<Vec<_>>()
        };
        // The new stream forks last: every pre-existing event is identical.
        assert_eq!(non_pc(&base), non_pc(&with_pc));
        assert!(base
            .iter()
            .all(|(_, e)| !matches!(e, FaultEvent::ProcessCrash(_))));
        let pc_count = with_pc
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::ProcessCrash(_)))
            .count();
        assert!(pc_count > 0, "rate 0.3 over 10 minutes crashes something");
        // And they route to the owning shard under split_by.
        let shards = with_pc.split_by(2, |d| (*d % 2) as usize);
        for (s, shard) in shards.iter().enumerate() {
            for (_, e) in shard.iter() {
                if let FaultEvent::ProcessCrash(d) = e {
                    assert_eq!((*d % 2) as usize, s);
                }
            }
        }
    }

    #[test]
    fn partitions_fork_last_and_leave_other_streams_untouched() {
        let horizon = SimDuration::from_mins(10);
        let devices: Vec<u32> = (0..4).collect();
        let base = FaultPlan::generate(
            13,
            horizon,
            &devices,
            &FaultConfig {
                process_crash_rate: 0.2,
                ..FaultConfig::default()
            },
        );
        let with_parts = FaultPlan::generate(
            13,
            horizon,
            &devices,
            &FaultConfig {
                process_crash_rate: 0.2,
                partition_rate: 0.3,
                partition_peers: 4,
                ..FaultConfig::default()
            },
        );
        let non_part = |p: &FaultPlan<u32>| {
            p.iter()
                .filter(|(_, e)| !matches!(e, FaultEvent::Partition { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        // The partition stream forks after every pre-existing stream
        // (including process crashes): everything else is identical.
        assert_eq!(non_part(&base), non_part(&with_parts));
        assert!(base
            .iter()
            .all(|(_, e)| !matches!(e, FaultEvent::Partition { .. })));
        let parts: Vec<_> = with_parts
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::Partition { a, b, window } => Some((*a, *b, *window)),
                _ => None,
            })
            .collect();
        assert!(!parts.is_empty(), "rate 0.3 over 10 minutes partitions");
        for (a, b, window) in &parts {
            assert_ne!(a, b, "a partition must separate two distinct shards");
            assert!(*a < 4 && *b < 4);
            assert_eq!(*window, SimDuration::from_secs(20));
        }
        // Zero peers keeps the stream inert even at rate 1.
        let inert = FaultPlan::generate(
            13,
            horizon,
            &devices,
            &FaultConfig {
                partition_rate: 1.0,
                partition_peers: 0,
                ..FaultConfig::default()
            },
        );
        assert!(inert
            .iter()
            .all(|(_, e)| !matches!(e, FaultEvent::Partition { .. })));
        // Partitions are cluster-scope: split_by replicates them to every
        // shard like other global events.
        let shards = with_parts.split_by(2, |d| (*d % 2) as usize);
        for shard in &shards {
            let got: Vec<_> = shard
                .iter()
                .filter_map(|(_, e)| match e {
                    FaultEvent::Partition { a, b, window } => Some((*a, *b, *window)),
                    _ => None,
                })
                .collect();
            assert_eq!(got, parts);
        }
    }

    #[test]
    fn split_by_partitions_device_events_and_replicates_global_ones() {
        let devices: Vec<u32> = (0..6).collect();
        let plan = FaultPlan::generate(
            9,
            SimDuration::from_mins(5),
            &devices,
            &FaultConfig::default(),
        );
        let shards = plan.split_by(2, |d| (*d % 2) as usize);
        assert_eq!(shards.len(), 2);
        let device_events = |p: &FaultPlan<u32>| {
            p.iter()
                .filter_map(|(_, e)| match e {
                    FaultEvent::Crash(d) | FaultEvent::Recover(d) => Some(*d),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        for (s, shard) in shards.iter().enumerate() {
            assert!(
                device_events(shard).iter().all(|d| (*d % 2) as usize == s),
                "shard {s} received a foreign device event"
            );
        }
        // Device events are partitioned exactly once…
        let total: usize = shards.iter().map(|p| device_events(p).len()).sum();
        assert_eq!(total, device_events(&plan).len());
        // …while global link events appear in every shard.
        let globals = |p: &FaultPlan<u32>| {
            p.iter()
                .filter(|(_, e)| !matches!(e, FaultEvent::Crash(_) | FaultEvent::Recover(_)))
                .count()
        };
        assert!(globals(&plan) > 0, "fault generation produced no bursts");
        for shard in &shards {
            assert_eq!(globals(shard), globals(&plan));
        }
    }
}
