//! Operation-counting CPU model.
//!
//! Figure 5 of the paper breaks the makespan into *scheduling time* (the
//! computational cost of the scheduling algorithm) and *service time* (the
//! time devices spend executing actions). The paper's scheduling times were
//! measured on a 1.5 GHz Pentium M in 2005; wall-clock measurements on modern
//! hardware would compress all five algorithms to near zero and destroy the
//! figure's shape. Instead, every scheduling algorithm in this reproduction
//! counts its elementary operations through an [`OpCounter`], and a
//! [`CpuModel`] converts counts into virtual time. Wall-clock time is still
//! measured and reported alongside.

use std::fmt;

use crate::SimDuration;

/// Counts elementary operations performed by an algorithm.
///
/// "One operation" is a coarse unit — roughly one cost-estimate, comparison
/// or data-structure step, i.e. tens of machine instructions. All algorithms
/// count with the same granularity, so relative comparisons are fair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    ops: u64,
}

impl OpCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        OpCounter::default()
    }

    /// Records `n` elementary operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops = self.ops.saturating_add(n);
    }

    /// Records a single elementary operation.
    #[inline]
    pub fn tick(&mut self) {
        self.add(1);
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.ops
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.ops = 0;
    }
}

impl fmt::Display for OpCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops", self.ops)
    }
}

/// Converts operation counts into virtual compute time.
///
/// The default calibration of 10⁶ counted-ops/second models the paper's
/// 1.5 GHz-class notebook executing Java with tens-to-hundreds of machine
/// instructions per counted operation. With this constant the greedy
/// algorithms' scheduling times land in the ~0.1 s range at n=20 requests and
/// the SA budget lands in the ~2.5 s range, matching Figure 5's reported
/// 0.16 s / 2.49 s breakdown.
///
/// # Example
///
/// ```
/// use aorta_sim::{CpuModel, OpCounter};
///
/// let cpu = CpuModel::paper_notebook();
/// let mut ops = OpCounter::new();
/// ops.add(1_000_000);
/// assert_eq!(cpu.time_for(&ops).as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    ops_per_sec: u64,
}

impl CpuModel {
    /// A CPU executing `ops_per_sec` counted operations per second.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_sec` is zero.
    pub fn new(ops_per_sec: u64) -> Self {
        assert!(ops_per_sec > 0, "ops_per_sec must be positive");
        CpuModel { ops_per_sec }
    }

    /// Calibration matching the paper's 1.5 GHz Pentium M notebook.
    pub fn paper_notebook() -> Self {
        CpuModel::new(1_000_000)
    }

    /// An effectively free CPU (for experiments isolating service time).
    pub fn instant() -> Self {
        CpuModel::new(u64::MAX)
    }

    /// Virtual time to execute the counted operations.
    pub fn time_for(&self, counter: &OpCounter) -> SimDuration {
        self.time_for_ops(counter.total())
    }

    /// Virtual time for a raw operation count.
    pub fn time_for_ops(&self, ops: u64) -> SimDuration {
        // micros = ops * 1e6 / ops_per_sec, computed without overflow.
        let whole = ops / self.ops_per_sec;
        let rem = ops % self.ops_per_sec;
        SimDuration::from_secs(whole)
            + SimDuration::from_micros(rem.saturating_mul(1_000_000) / self.ops_per_sec)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::paper_notebook()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = OpCounter::new();
        c.tick();
        c.add(9);
        assert_eq!(c.total(), 10);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = OpCounter::new();
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.total(), u64::MAX);
    }

    #[test]
    fn paper_notebook_calibration() {
        let cpu = CpuModel::paper_notebook();
        assert_eq!(cpu.time_for_ops(160_000), SimDuration::from_millis(160));
        assert_eq!(
            cpu.time_for_ops(2_490_000),
            SimDuration::from_micros(2_490_000),
            "SA's 2.49s scheduling budget"
        );
    }

    #[test]
    fn instant_cpu_is_free() {
        let cpu = CpuModel::instant();
        assert_eq!(cpu.time_for_ops(1_000_000_000), SimDuration::ZERO);
    }

    #[test]
    fn no_overflow_on_large_counts() {
        let cpu = CpuModel::new(3);
        // 10 ops at 3 ops/sec = 3.333.. s
        let d = cpu.time_for_ops(10);
        assert_eq!(
            d,
            SimDuration::from_secs(3) + SimDuration::from_micros(333_333)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = CpuModel::new(0);
    }

    #[test]
    fn display_counter() {
        let mut c = OpCounter::new();
        c.add(42);
        assert_eq!(c.to_string(), "42 ops");
    }
}
