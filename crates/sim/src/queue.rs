//! A stable timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs popped in time order.
///
/// Events scheduled for the same instant are popped in insertion (FIFO)
/// order, which keeps simulations deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use aorta_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(10), 'b');
/// q.push(SimTime::from_micros(10), 'c');
/// q.push(SimTime::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Iterates over pending events in no particular order (inspection
    /// only — popping order is still by time, FIFO on ties).
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.heap.iter().map(|e| (e.time, &e.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u8> = (0..5u8)
            .map(|i| (SimTime::from_micros(i as u64), i))
            .collect();
        assert_eq!(q.len(), 5);
    }

    proptest! {
        /// Whatever order events are inserted in, they come out sorted by
        /// time, and equal-time runs preserve insertion order.
        #[test]
        fn prop_output_sorted_and_stable(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut out = Vec::new();
            while let Some((t, idx)) = q.pop() {
                out.push((t.as_micros(), idx));
            }
            prop_assert_eq!(out.len(), times.len());
            for w in out.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "times out of order");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
                }
            }
        }
    }
}
