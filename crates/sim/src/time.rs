//! Virtual clock types.
//!
//! The simulation clock has microsecond resolution, which is fine-grained
//! enough for the paper's timescales (action costs of 0.36–5.36 s, network
//! latencies of milliseconds) while keeping arithmetic in `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual simulation clock.
///
/// `SimTime` is an absolute instant; the difference of two instants is a
/// [`SimDuration`]. Time starts at [`SimTime::ZERO`] when a simulation
/// begins.
///
/// # Example
///
/// ```
/// use aorta_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(1500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (non-negative).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The elapsed duration since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// instead of panicking, mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from a float number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Total microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Total milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies by a float scale factor (rounding to the nearest microsecond).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == u64::MAX {
            write!(f, "inf")
        } else if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 3_250_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(3_250_000));
        assert_eq!((t - SimDuration::from_secs(3)).as_micros(), 250_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(
            SimDuration::from_secs_f64(0.000001),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest_microsecond() {
        assert_eq!(
            SimDuration::from_secs_f64(0.36).as_micros(),
            360_000,
            "paper's minimum photo() cost"
        );
        assert_eq!(SimDuration::from_secs_f64(5.36).as_micros(), 5_360_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_micros(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_micros(3).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs_f64(5.36).to_string(), "5.360s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn scaling_and_division() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_micros(10);
        let tb = SimTime::from_micros(20);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
