//! Seeded, forkable randomness for deterministic experiments.
//!
//! Self-contained xoshiro256++ keeps the workspace free of external
//! dependencies (the build environment has no crates.io access) and makes the
//! stream definition part of the repository: the same seed produces the same
//! run on every toolchain, forever.

use std::ops::{Range, RangeInclusive};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random source for simulations.
///
/// Every experiment in the reproduction takes an explicit `u64` seed; runs
/// with the same seed produce bit-identical results. `fork` derives an
/// independent child stream so that adding random draws in one component
/// does not perturb another (e.g. the camera failure model and the workload
/// generator never share a stream).
///
/// # Example
///
/// ```
/// use aorta_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Children with distinct labels are statistically independent of each
    /// other and of the parent's future draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix a fresh draw with the label via splitmix64-style finalization.
        let mut z = self
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Uniform sample from a range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The raw generator state, for state-equality checks (e.g. asserting
    /// two recovery paths reconstructed the same engine). Two generators
    /// with equal state produce identical futures.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Uniform value in `[0, bound)` via rejection sampling (no modulo bias).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types uniformly sampleable between two bounds.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[lo, hi)`; panics when the range is empty.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut SimRng) -> Self;
    /// Uniform sample from `[lo, hi]`; panics when `lo > hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut SimRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut SimRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = rng.below(span as u64) as i128;
                (lo as i128 + off) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut SimRng) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span as u64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut SimRng) -> Self {
                assert!(lo < hi, "empty range");
                lo + (rng.unit() as $t) * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut SimRng) -> Self {
                assert!(lo <= hi, "empty range");
                lo + (rng.unit() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`SimRng::range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_label_order() {
        let mut parent1 = SimRng::seed(99);
        let mut parent2 = SimRng::seed(99);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Distinct labels give distinct streams.
        let mut parent3 = SimRng::seed(99);
        let mut c3 = parent3.fork(1);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = SimRng::seed(6);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seed(7);
        assert_eq!(r.pick::<u8>(&[]), None);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items left them sorted");
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed(8);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut r = SimRng::seed(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range(0..=3u64);
            assert!(v <= 3);
            lo_seen |= v == 0;
            hi_seen |= v == 3;
            let w = r.range(-40..=40i64);
            assert!((-40..=40).contains(&w));
            let f = r.range(-170.0..170.0f64);
            assert!((-170.0..170.0).contains(&f));
        }
        assert!(lo_seen && hi_seen);
    }
}
