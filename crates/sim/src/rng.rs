//! Seeded, forkable randomness for deterministic experiments.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
///
/// Every experiment in the reproduction takes an explicit `u64` seed; runs
/// with the same seed produce bit-identical results. `fork` derives an
/// independent child stream so that adding random draws in one component
/// does not perturb another (e.g. the camera failure model and the workload
/// generator never share a stream).
///
/// # Example
///
/// ```
/// use aorta_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Children with distinct labels are statistically independent of each
    /// other and of the parent's future draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix a fresh draw with the label via splitmix64-style finalization.
        let mut z = self
            .inner
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Uniform sample from a range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..items.len());
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_label_order() {
        let mut parent1 = SimRng::seed(99);
        let mut parent2 = SimRng::seed(99);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Distinct labels give distinct streams.
        let mut parent3 = SimRng::seed(99);
        let mut c3 = parent3.fork(1);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = SimRng::seed(6);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seed(7);
        assert_eq!(r.pick::<u8>(&[]), None);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items left them sorted");
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed(8);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
