//! Network-link model: latency, jitter and loss.

use crate::{SimDuration, SimRng};

/// Outcome of attempting a transmission over a [`LinkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives after the given one-way latency.
    Arrives(SimDuration),
    /// The message is lost in transit.
    Lost,
}

impl Delivery {
    /// True when the message arrives.
    pub fn is_delivered(self) -> bool {
        matches!(self, Delivery::Arrives(_))
    }

    /// The one-way latency, or `None` when lost.
    pub fn latency(self) -> Option<SimDuration> {
        match self {
            Delivery::Arrives(d) => Some(d),
            Delivery::Lost => None,
        }
    }
}

/// A simple stochastic link: fixed base latency plus uniform jitter, with an
/// independent per-message loss probability and a per-byte serialization
/// cost.
///
/// This is the substrate under the paper's uniform data communication layer:
/// the MICA2 radio (high loss, moderate latency), camera Ethernet (low loss,
/// low latency) and phone cell link (moderate loss, high latency) are all
/// instances with different parameters.
///
/// # Example
///
/// ```
/// use aorta_sim::{LinkModel, SimDuration, SimRng};
///
/// let link = LinkModel::new(SimDuration::from_millis(2), SimDuration::from_millis(1), 0.0)
///     .with_bytes_per_sec(1_000_000);
/// let mut rng = SimRng::seed(1);
/// let d = link.transmit(100, &mut rng);
/// assert!(d.is_delivered());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    base_latency: SimDuration,
    jitter: SimDuration,
    loss_prob: f64,
    bytes_per_sec: u64,
}

impl LinkModel {
    /// Creates a link with the given base one-way latency, maximum additive
    /// jitter and per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob` is not within `[0, 1]`.
    pub fn new(base_latency: SimDuration, jitter: SimDuration, loss_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability must be in [0,1], got {loss_prob}"
        );
        LinkModel {
            base_latency,
            jitter,
            loss_prob,
            bytes_per_sec: 0,
        }
    }

    /// A perfectly reliable zero-latency link (useful in unit tests).
    pub fn ideal() -> Self {
        LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 0.0)
    }

    /// Sets the serialization bandwidth; zero (the default) means payload
    /// size does not affect latency.
    pub fn with_bytes_per_sec(mut self, bytes_per_sec: u64) -> Self {
        self.bytes_per_sec = bytes_per_sec;
        self
    }

    /// The configured loss probability.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// The configured base latency.
    pub fn base_latency(&self) -> SimDuration {
        self.base_latency
    }

    /// The configured maximum additive jitter.
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// The configured serialization bandwidth (zero = size-independent).
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Samples the fate of a single `payload_bytes`-sized message.
    pub fn transmit(&self, payload_bytes: usize, rng: &mut SimRng) -> Delivery {
        if rng.chance(self.loss_prob) {
            return Delivery::Lost;
        }
        let mut latency = self.base_latency;
        if !self.jitter.is_zero() {
            latency += SimDuration::from_micros(rng.range(0..=self.jitter.as_micros()));
        }
        if let Some(ser_us) = (payload_bytes as u64)
            .saturating_mul(1_000_000)
            .checked_div(self.bytes_per_sec)
        {
            latency += SimDuration::from_micros(ser_us);
        }
        Delivery::Arrives(latency)
    }

    /// Samples a full round trip of `out_bytes` then `back_bytes`.
    ///
    /// Returns `None` when either direction loses the message.
    pub fn round_trip(
        &self,
        out_bytes: usize,
        back_bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let out = self.transmit(out_bytes, rng).latency()?;
        let back = self.transmit(back_bytes, rng).latency()?;
        Some(out + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let link = LinkModel::ideal();
        let mut rng = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(
                link.transmit(1000, &mut rng),
                Delivery::Arrives(SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn latency_within_bounds() {
        let link = LinkModel::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            0.0,
        );
        let mut rng = SimRng::seed(2);
        for _ in 0..1000 {
            let d = link.transmit(0, &mut rng).latency().unwrap();
            assert!(d >= SimDuration::from_millis(10));
            assert!(d <= SimDuration::from_millis(15));
        }
    }

    #[test]
    fn loss_rate_roughly_matches() {
        let link = LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 0.3);
        let mut rng = SimRng::seed(3);
        let lost = (0..10_000)
            .filter(|_| !link.transmit(0, &mut rng).is_delivered())
            .count();
        assert!((2_700..=3_300).contains(&lost), "got {lost}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let link = LinkModel::ideal().with_bytes_per_sec(1_000);
        let mut rng = SimRng::seed(4);
        let d = link.transmit(500, &mut rng).latency().unwrap();
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let link = LinkModel::new(SimDuration::from_millis(3), SimDuration::ZERO, 0.0);
        let mut rng = SimRng::seed(5);
        assert_eq!(
            link.round_trip(0, 0, &mut rng),
            Some(SimDuration::from_millis(6))
        );
    }

    #[test]
    fn round_trip_fails_on_loss() {
        let link = LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.0);
        let mut rng = SimRng::seed(6);
        assert_eq!(link.round_trip(0, 0, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let _ = LinkModel::new(SimDuration::ZERO, SimDuration::ZERO, 1.5);
    }

    proptest! {
        #[test]
        fn prop_latency_monotone_in_payload(bytes_a in 0usize..10_000, bytes_b in 0usize..10_000) {
            let link = LinkModel::ideal().with_bytes_per_sec(10_000);
            // Same rng state for both (clone) => only payload differs.
            let base = SimRng::seed(7);
            let da = link.transmit(bytes_a, &mut base.clone()).latency().unwrap();
            let db = link.transmit(bytes_b, &mut base.clone()).latency().unwrap();
            if bytes_a <= bytes_b {
                prop_assert!(da <= db);
            } else {
                prop_assert!(da >= db);
            }
        }
    }
}
