//! Lightweight metrics for experiment reporting: counters and duration
//! histograms with summary statistics.

use std::fmt;

use crate::SimDuration;

/// Exact nearest-rank percentile over an already **sorted** slice.
///
/// `rank = ceil(q * n)` clamped to `[1, n]`, and the result is
/// `sorted[rank - 1]` — the standard nearest-rank definition, which unlike
/// the floor-index shortcut (`sorted[(q * n) as usize]`) never reads past
/// the end at `q = 1.0` and returns the minimum (not an underflow) at
/// `q = 0.0`. Returns `None` on an empty slice: callers must handle the
/// no-samples case explicitly instead of defaulting to a vacuous value.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use aorta_sim::metrics::percentile;
///
/// let v = [1, 2, 3, 4];
/// assert_eq!(percentile(&v, 0.5), Some(2));
/// assert_eq!(percentile(&v, 0.99), Some(4));
/// let empty: [i32; 0] = [];
/// assert_eq!(percentile(&empty, 0.99), None);
/// ```
pub fn percentile<T: Copy>(sorted: &[T], q: f64) -> Option<T> {
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile must be in [0,1], got {q}"
    );
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use aorta_sim::metrics::Counter;
///
/// let mut failures = Counter::new("action_failures");
/// failures.incr();
/// failures.add(2);
/// assert_eq!(failures.value(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// An exact-sample duration histogram with summary statistics.
///
/// Stores all samples (experiments here record at most a few hundred
/// thousand) so quantiles are exact rather than approximate.
///
/// # Example
///
/// ```
/// use aorta_sim::metrics::DurationStats;
/// use aorta_sim::SimDuration;
///
/// let mut s = DurationStats::new();
/// for secs in [1, 2, 3] {
///     s.record(SimDuration::from_secs(secs));
/// }
/// assert_eq!(s.mean(), Some(SimDuration::from_secs(2)));
/// assert_eq!(s.max(), Some(SimDuration::from_secs(3)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurationStats {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl DurationStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        DurationStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        self.samples.iter().copied().sum()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.total() / self.samples.len() as u64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().copied().max()
    }

    /// Exact quantile by the nearest-rank method; `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        percentile(&self.samples, q)
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<SimDuration> {
        self.quantile(0.5)
    }

    /// Sample standard deviation in seconds (n-1 denominator).
    pub fn stddev_secs(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let mean = self.mean()?.as_secs_f64();
        let var = self
            .samples
            .iter()
            .map(|s| {
                let d = s.as_secs_f64() - mean;
                d * d
            })
            .sum::<f64>()
            / (self.samples.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Iterates over the recorded samples in insertion order (unless a
    /// quantile call has sorted them).
    pub fn iter(&self) -> std::slice::Iter<'_, SimDuration> {
        self.samples.iter()
    }
}

impl Extend<SimDuration> for DurationStats {
    fn extend<I: IntoIterator<Item = SimDuration>>(&mut self, iter: I) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for DurationStats {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        let mut s = DurationStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for DurationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.count(), self.mean(), self.min(), self.max()) {
            (0, ..) => write!(f, "n=0"),
            (n, Some(mean), Some(min), Some(max)) => {
                write!(f, "n={n} mean={mean} min={min} max={max}")
            }
            _ => unreachable!("non-empty stats always have mean/min/max"),
        }
    }
}

/// A ratio metric: successes over trials.
///
/// Used for the §6.2 action-failure-rate experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    trials: u64,
}

impl Ratio {
    /// A fresh 0/0 ratio.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one trial, which either hit or missed.
    pub fn record(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Hits over trials; `None` when no trials recorded.
    pub fn fraction(&self) -> Option<f64> {
        if self.trials == 0 {
            None
        } else {
            Some(self.hits as f64 / self.trials as f64)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fraction() {
            Some(p) => write!(f, "{}/{} ({:.1}%)", self.hits, self.trials, p * 100.0),
            None => write!(f, "0/0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
        assert_eq!(c.to_string(), "x=5");
    }

    #[test]
    fn stats_summary() {
        let mut s: DurationStats = [4u64, 1, 3, 2]
            .iter()
            .map(|&x| SimDuration::from_secs(x))
            .collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.total(), SimDuration::from_secs(10));
        assert_eq!(s.mean(), Some(SimDuration::from_micros(2_500_000)));
        assert_eq!(s.min(), Some(SimDuration::from_secs(1)));
        assert_eq!(s.max(), Some(SimDuration::from_secs(4)));
        assert_eq!(s.median(), Some(SimDuration::from_secs(2)));
        assert_eq!(s.quantile(1.0), Some(SimDuration::from_secs(4)));
        assert_eq!(s.quantile(0.0), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn empty_stats() {
        let mut s = DurationStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.stddev_secs(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn stddev_known_value() {
        let s: DurationStats = [2u64, 4, 4, 4, 5, 5, 7, 9]
            .iter()
            .map(|&x| SimDuration::from_secs(x))
            .collect();
        // Sample stddev of this classic set is ~2.138.
        let sd = s.stddev_secs().unwrap();
        assert!((sd - 2.138).abs() < 0.01, "got {sd}");
    }

    #[test]
    fn ratio_display_and_fraction() {
        let mut r = Ratio::new();
        assert_eq!(r.fraction(), None);
        for i in 0..10 {
            r.record(i < 3);
        }
        assert_eq!(r.hits(), 3);
        assert_eq!(r.trials(), 10);
        assert_eq!(r.fraction(), Some(0.3));
        assert_eq!(r.to_string(), "3/10 (30.0%)");
    }

    #[test]
    fn percentile_known_small_vectors() {
        // Nearest-rank on [1,2,3,4]: p50 → rank 2 → 2. A floor-index
        // implementation (v[(0.5 * 4) as usize]) would wrongly give 3.
        let v = [1u64, 2, 3, 4];
        assert_eq!(percentile(&v, 0.5), Some(2));
        assert_eq!(percentile(&v, 0.25), Some(1));
        assert_eq!(percentile(&v, 0.75), Some(3));
        // p99 of 4 samples is the max; floor-index would read v[3] too,
        // but at q=1.0 it would read v[4] and panic.
        assert_eq!(percentile(&v, 0.99), Some(4));
        assert_eq!(percentile(&v, 1.0), Some(4));
        assert_eq!(percentile(&v, 0.0), Some(1));
        // Single element: every percentile is that element.
        assert_eq!(percentile(&[7u64], 0.0), Some(7));
        assert_eq!(percentile(&[7u64], 0.99), Some(7));
        assert_eq!(percentile(&[7u64], 1.0), Some(7));
        // Empty: explicit None, never a silent default.
        let empty: [u64; 0] = [];
        assert_eq!(percentile(&empty, 0.99), None);
        // Five elements: p50 → rank ceil(2.5)=3 → median element.
        assert_eq!(percentile(&[10u64, 20, 30, 40, 50], 0.5), Some(30));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1u64], -0.1);
    }

    #[test]
    fn quantile_delegates_to_percentile() {
        let mut s: DurationStats = [5u64, 1, 9, 3]
            .iter()
            .map(|&x| SimDuration::from_secs(x))
            .collect();
        let mut sorted: Vec<SimDuration> = s.iter().copied().collect();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), percentile(&sorted, q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let mut s = DurationStats::new();
        s.record(SimDuration::ZERO);
        let _ = s.quantile(1.5);
    }

    proptest! {
        #[test]
        fn prop_mean_between_min_and_max(xs in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let s: DurationStats = xs.iter().map(|&x| SimDuration::from_micros(x)).collect();
            let mean = s.mean().unwrap();
            prop_assert!(s.min().unwrap() <= mean);
            prop_assert!(mean <= s.max().unwrap());
        }

        #[test]
        fn prop_quantiles_monotone(xs in proptest::collection::vec(0u64..1_000_000, 1..100)) {
            let mut s: DurationStats = xs.iter().map(|&x| SimDuration::from_micros(x)).collect();
            let q25 = s.quantile(0.25).unwrap();
            let q50 = s.quantile(0.5).unwrap();
            let q75 = s.quantile(0.75).unwrap();
            prop_assert!(q25 <= q50 && q50 <= q75);
        }
    }
}
