//! A bounded trace buffer for debugging simulations.

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// One traced occurrence: a timestamp, a subsystem label and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened on the virtual clock.
    pub time: SimTime,
    /// Which subsystem emitted it (e.g. `"lock"`, `"probe"`, `"camera"`).
    pub subsystem: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.subsystem, self.message)
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are dropped. Tests assert on traces to verify
/// *why* the system behaved a certain way (e.g. that a probe timed out before
/// a device was excluded from optimization).
///
/// # Example
///
/// ```
/// use aorta_sim::{SimTime, TraceBuffer};
///
/// let mut trace = TraceBuffer::with_capacity(100);
/// trace.emit(SimTime::ZERO, "probe", "camera-1 timed out");
/// assert!(trace.any("probe", "timed out"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled buffer that records nothing (zero overhead in benches).
    pub fn disabled() -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            capacity: 0,
            dropped: 0,
            enabled: false,
        }
    }

    /// Whether this buffer records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event, evicting the oldest if at capacity.
    pub fn emit(&mut self, time: SimTime, subsystem: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            subsystem,
            message: message.into(),
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events have been evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// True if any retained event from `subsystem` contains `needle`.
    pub fn any(&self, subsystem: &str, needle: &str) -> bool {
        self.events
            .iter()
            .any(|e| e.subsystem == subsystem && e.message.contains(needle))
    }

    /// Counts retained events from `subsystem`.
    pub fn count(&self, subsystem: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.subsystem == subsystem)
            .count()
    }

    /// Discards all retained events (keeps the drop counter).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders every retained event as one line each, oldest first.
    ///
    /// Determinism tests compare two runs' renderings byte for byte.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_finds() {
        let mut t = TraceBuffer::with_capacity(10);
        t.emit(SimTime::ZERO, "lock", "camera-0 locked by query 3");
        t.emit(SimTime::from_micros(5), "lock", "camera-0 unlocked");
        assert_eq!(t.len(), 2);
        assert!(t.any("lock", "unlocked"));
        assert!(!t.any("probe", "unlocked"));
        assert_eq!(t.count("lock"), 2);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut t = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            t.emit(SimTime::from_micros(i), "s", format!("event {i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().unwrap();
        assert_eq!(first.message, "event 2");
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.emit(SimTime::ZERO, "s", "x");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            time: SimTime::from_micros(1_500_000),
            subsystem: "probe",
            message: "ok".into(),
        };
        assert_eq!(e.to_string(), "[1.500s] probe: ok");
    }

    #[test]
    fn clear_keeps_drop_count() {
        let mut t = TraceBuffer::with_capacity(1);
        t.emit(SimTime::ZERO, "a", "1");
        t.emit(SimTime::ZERO, "a", "2");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
