//! # aorta-sim — deterministic discrete-event simulation kernel
//!
//! Every timing-sensitive result in the Aorta reproduction is measured in
//! *virtual time* driven by this crate, which makes experiments deterministic
//! (seeded) and laptop-scale. The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual clock
//!   types with arithmetic and human-readable display,
//! * [`EventQueue`] — a stable (FIFO-on-tie) priority queue of timestamped
//!   events,
//! * [`LinkModel`] — a network-link model with base latency, jitter and
//!   packet loss, used by the communication layer,
//! * [`CpuModel`] + [`OpCounter`] — an operation-counting model that converts
//!   algorithmic work into virtual *scheduling time* (the paper reports the
//!   scheduling time of its algorithms on a 1.5 GHz notebook; wall-clock on
//!   modern hardware cannot reproduce those absolute numbers, op counts can
//!   reproduce their shape),
//! * [`SimRng`] — a seeded, forkable random source,
//! * [`metrics`] — histograms and counters for experiment reporting.
//!
//! # Example
//!
//! ```
//! use aorta_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! q.push(SimTime::ZERO + SimDuration::from_millis(2), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(2));
//! ```

#![warn(missing_docs)]

mod cpu;
mod fault;
mod link;
pub mod metrics;
mod queue;
mod rng;
mod time;
mod trace;

pub use cpu::{CpuModel, OpCounter};
pub use fault::{FaultConfig, FaultEvent, FaultPlan};
pub use link::{Delivery, LinkModel};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEvent};
